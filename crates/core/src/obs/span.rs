//! Hierarchical spans over the [`TraceEvent`] stream.
//!
//! Raw events answer "what happened when"; spans answer "what contained
//! what". [`SpanSink`] folds the flat event stream into a tree —
//!
//! ```text
//! workflow
//! ├── service crestLines
//! │   ├── item 0                    (one invocation)
//! │   │   ├── submission            (enactor → grid UI)
//! │   │   ├── scheduling            (UI → CE queue, via the broker)
//! │   │   ├── queuing               (batch queue wait)
//! │   │   ├── execution             (worker occupancy)
//! │   │   └── transfer              (completion → submitter)
//! │   └── item 1 …
//! └── service crestMatch …
//! ```
//!
//! — which is exactly the decomposition the paper needs to attribute a
//! makespan to grid overhead (everything but `execution`) versus useful
//! compute. Phase spans are created *retrospectively* when their end
//! marker arrives, so a run on a non-grid backend (no `Grid*` events)
//! simply yields item spans without phases. A resubmitted job gets a
//! fresh scheduling/queuing/execution chain per attempt, so retries are
//! visible as repeated phases under one item.

use super::{EventSink, TraceEvent};
use moteur_gridsim::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Identifier of a span inside one [`SpanTree`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub usize);

/// The five grid phases of one invocation attempt, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GridPhase {
    /// Enactor hand-off → grid user interface acceptance.
    Submission,
    /// UI acceptance → broker match → CE queue entry.
    Scheduling,
    /// Batch-queue wait until a worker slot frees.
    Queuing,
    /// Worker occupancy (stage-in + compute + stage-out).
    Execution,
    /// Completion visible on the worker → submitter notified.
    Transfer,
}

impl GridPhase {
    /// Stable snake_case name, used in rendering and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            GridPhase::Submission => "submission",
            GridPhase::Scheduling => "scheduling",
            GridPhase::Queuing => "queuing",
            GridPhase::Execution => "execution",
            GridPhase::Transfer => "transfer",
        }
    }

    /// All phases, lifecycle order.
    pub const ALL: [GridPhase; 5] = [
        GridPhase::Submission,
        GridPhase::Scheduling,
        GridPhase::Queuing,
        GridPhase::Execution,
        GridPhase::Transfer,
    ];
}

/// The level of a span in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole enactment (root).
    Workflow,
    /// All invocations of one processor.
    Service,
    /// One invocation (one data item through one service).
    DataItem,
    /// One grid phase of one invocation attempt.
    Phase(GridPhase),
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Workflow => "workflow",
            SpanKind::Service => "service",
            SpanKind::DataItem => "item",
            SpanKind::Phase(p) => p.name(),
        }
    }
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub kind: SpanKind,
    /// Workflow/service name, `item <invocation>` or the phase name.
    pub name: String,
    pub start: SimTime,
    /// `None` while the span is still open (run aborted mid-flight).
    pub end: Option<SimTime>,
    /// Free-form attributes (`ce`, `attempt`, `batched`, `error`, …),
    /// in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Span length; open spans report zero.
    pub fn duration_secs(&self) -> f64 {
        self.end
            .map_or(0.0, |e| e.as_secs_f64() - self.start.as_secs_f64())
    }

    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An immutable snapshot of the span hierarchy of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    spans: Vec<Span>,
}

impl SpanTree {
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.get(id.0)
    }

    /// Top-level spans (normally exactly one workflow span).
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Direct children of `id`, in creation order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// Spans of one kind, in creation order.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// `(count, total seconds)` aggregated per grid phase, keyed by the
    /// phase's stable name. Phases that never occurred are absent.
    pub fn phase_durations(&self) -> BTreeMap<&'static str, (u64, f64)> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            if let SpanKind::Phase(p) = s.kind {
                let e = out.entry(p.name()).or_insert((0u64, 0.0f64));
                e.0 += 1;
                e.1 += s.duration_secs();
            }
        }
        out
    }

    /// Total grid overhead: every phase except `execution`.
    pub fn overhead_secs(&self) -> f64 {
        self.phase_durations()
            .iter()
            .filter(|(name, _)| **name != "execution")
            .map(|(_, (_, sum))| sum)
            .sum()
    }

    /// Indented text rendering of the tree with per-span durations.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack: Vec<(SpanId, usize)> = self
            .roots()
            .map(|s| (s.id, 0))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        while let Some((id, depth)) = stack.pop() {
            let s = &self.spans[id.0];
            let open = if s.end.is_none() { " (open)" } else { "" };
            let label = if s.name == s.kind.name() {
                s.name.clone()
            } else {
                format!("{} {}", s.kind.name(), s.name)
            };
            let _ = writeln!(
                out,
                "{:indent$}{} [{:.1}s @ {:.1}s]{}",
                "",
                label,
                s.duration_secs(),
                s.start.as_secs_f64(),
                open,
                indent = depth * 2
            );
            let children: Vec<(SpanId, usize)> =
                self.children(id).map(|c| (c.id, depth + 1)).collect();
            for c in children.into_iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// JSONL rendering: one span object per line, parent by id.
    pub fn to_jsonl(&self) -> String {
        use super::json::JsonObject;
        let mut out = String::new();
        for s in &self.spans {
            let mut o = JsonObject::new()
                .uint("id", s.id.0 as u64)
                .str("kind", s.kind.name())
                .str("name", &s.name)
                .num("start", s.start.as_secs_f64());
            if let Some(p) = s.parent {
                o = o.uint("parent", p.0 as u64);
            }
            if let Some(e) = s.end {
                o = o.num("end", e.as_secs_f64());
            }
            for (k, v) in &s.attrs {
                o = o.str(k, v);
            }
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }
}

/// Shared read handle over a [`SpanSink`]'s tree.
#[derive(Debug, Clone)]
pub struct SpanBuffer {
    inner: Arc<Mutex<SpanTree>>,
}

impl SpanBuffer {
    /// Copy of the tree as recorded so far.
    pub fn snapshot(&self) -> SpanTree {
        self.inner.lock().expect("span tree lock").clone()
    }
}

/// Per-invocation assembly state.
#[derive(Debug, Clone, Copy)]
struct ItemState {
    span: SpanId,
    /// Start marker of the next retro-created phase span.
    mark: SimTime,
}

/// [`EventSink`] folding the event stream into a [`SpanTree`].
#[derive(Debug)]
pub struct SpanSink {
    tree: Arc<Mutex<SpanTree>>,
    root: Option<SpanId>,
    services: HashMap<String, SpanId>,
    items: HashMap<u64, ItemState>,
    /// Fresh attempt tags registered per logical invocation by the
    /// fault-tolerance machinery (timeout resubmits continue the same
    /// item span; speculative replicas get sibling spans). Cleared on
    /// the logical invocation's terminal event so a winning replica's
    /// span is closed even though only the loser receives an explicit
    /// `JobCancelled`.
    attempts_of: HashMap<u64, Vec<u64>>,
}

impl SpanSink {
    /// Returns the sink and a shared handle to read the tree after (or
    /// during) the run.
    pub fn new() -> (Self, SpanBuffer) {
        let tree = Arc::new(Mutex::new(SpanTree::default()));
        (
            SpanSink {
                tree: tree.clone(),
                root: None,
                services: HashMap::new(),
                items: HashMap::new(),
                attempts_of: HashMap::new(),
            },
            SpanBuffer { inner: tree },
        )
    }

    fn open(
        tree: &mut SpanTree,
        parent: Option<SpanId>,
        kind: SpanKind,
        name: String,
        start: SimTime,
    ) -> SpanId {
        let id = SpanId(tree.spans.len());
        tree.spans.push(Span {
            id,
            parent,
            kind,
            name,
            start,
            end: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Retro-create a finished phase span `[state.mark, at]` under the
    /// invocation's item span and advance the marker.
    fn phase(
        tree: &mut SpanTree,
        state: &mut ItemState,
        phase: GridPhase,
        at: SimTime,
        attrs: &[(&str, String)],
    ) {
        let id = Self::open(
            tree,
            Some(state.span),
            SpanKind::Phase(phase),
            phase.name().to_string(),
            state.mark,
        );
        tree.spans[id.0].end = Some(at);
        for (k, v) in attrs {
            tree.spans[id.0].attrs.push(((*k).to_string(), v.clone()));
        }
        state.mark = at;
    }
}

impl EventSink for SpanSink {
    fn record(&mut self, event: &TraceEvent) {
        let at = event.at();
        let mut tree = self.tree.lock().expect("span tree lock");
        let root = *self.root.get_or_insert_with(|| {
            Self::open(
                &mut tree,
                None,
                SpanKind::Workflow,
                "workflow".to_string(),
                at,
            )
        });
        // The root tracks the latest timestamp seen, so it is always a
        // closed, full-run span once the stream ends.
        if tree.spans[root.0].end.is_none_or(|e| e < at) {
            tree.spans[root.0].end = Some(at);
        }
        match event {
            TraceEvent::JobSubmitted {
                invocation,
                processor,
                batched,
                ..
            } => {
                let service = *self.services.entry(processor.clone()).or_insert_with(|| {
                    Self::open(
                        &mut tree,
                        Some(root),
                        SpanKind::Service,
                        processor.clone(),
                        at,
                    )
                });
                let item = Self::open(
                    &mut tree,
                    Some(service),
                    SpanKind::DataItem,
                    invocation.to_string(),
                    at,
                );
                if *batched > 1 {
                    tree.spans[item.0]
                        .attrs
                        .push(("batched".to_string(), batched.to_string()));
                }
                self.items.insert(
                    *invocation,
                    ItemState {
                        span: item,
                        mark: at,
                    },
                );
            }
            // A cache-elided invocation: open the item span like a
            // submission would, but mark it cached. The only phase it
            // can accrue is the fetch's transfer — submission,
            // scheduling, queuing and execution never appear.
            TraceEvent::CacheHit {
                invocation,
                processor,
                ..
            } => {
                let service = *self.services.entry(processor.clone()).or_insert_with(|| {
                    Self::open(
                        &mut tree,
                        Some(root),
                        SpanKind::Service,
                        processor.clone(),
                        at,
                    )
                });
                let item = Self::open(
                    &mut tree,
                    Some(service),
                    SpanKind::DataItem,
                    invocation.to_string(),
                    at,
                );
                tree.spans[item.0]
                    .attrs
                    .push(("cached".to_string(), "true".to_string()));
                self.items.insert(
                    *invocation,
                    ItemState {
                        span: item,
                        mark: at,
                    },
                );
            }
            TraceEvent::GridSubmitted { invocation, .. } => {
                if let Some(s) = self.items.get_mut(invocation) {
                    Self::phase(&mut tree, s, GridPhase::Submission, at, &[]);
                }
            }
            TraceEvent::GridEnqueued {
                invocation,
                ce,
                attempt,
                ..
            } => {
                if let Some(s) = self.items.get_mut(invocation) {
                    Self::phase(
                        &mut tree,
                        s,
                        GridPhase::Scheduling,
                        at,
                        &[("ce", ce.to_string()), ("attempt", attempt.to_string())],
                    );
                }
            }
            TraceEvent::GridStarted { invocation, .. } => {
                if let Some(s) = self.items.get_mut(invocation) {
                    Self::phase(&mut tree, s, GridPhase::Queuing, at, &[]);
                }
            }
            TraceEvent::GridFinished {
                invocation,
                success,
                ..
            } => {
                if let Some(s) = self.items.get_mut(invocation) {
                    Self::phase(
                        &mut tree,
                        s,
                        GridPhase::Execution,
                        at,
                        &[("success", success.to_string())],
                    );
                }
            }
            TraceEvent::GridDelivered { invocation, .. } => {
                if let Some(s) = self.items.get_mut(invocation) {
                    Self::phase(&mut tree, s, GridPhase::Transfer, at, &[]);
                }
            }
            TraceEvent::GridResubmitted { invocation, .. } => {
                // Failure-detection gap: advance the marker so the next
                // attempt's scheduling span starts at resubmission, not
                // at the failed finish.
                if let Some(s) = self.items.get_mut(invocation) {
                    s.mark = at;
                }
            }
            TraceEvent::JobTimedOut {
                invocation, action, ..
            } => {
                if let Some(s) = self.items.get_mut(invocation) {
                    tree.spans[s.span.0]
                        .attrs
                        .push(("timed_out".to_string(), (*action).to_string()));
                    s.mark = at;
                }
            }
            TraceEvent::JobResubmitted {
                invocation,
                attempt,
                ..
            } => {
                // An enactor-level resubmission is a fresh try of the
                // same data item: its grid phases continue under the
                // one item span. Timeout resubmits carry a fresh
                // backend tag — alias it so the new attempt's `Grid*`
                // events (keyed by that tag) still find the item.
                if let Some(s) = self.items.get_mut(invocation) {
                    s.mark = at;
                    let state = *s;
                    if attempt != invocation {
                        self.items.insert(*attempt, ItemState { mark: at, ..state });
                        self.attempts_of
                            .entry(*invocation)
                            .or_default()
                            .push(*attempt);
                    }
                }
            }
            TraceEvent::JobReplicated {
                invocation,
                attempt,
                replica,
                ..
            } => {
                // A speculative replica races the original attempt: it
                // appears as a sibling item span under the same
                // service, so both attempts' phase chains stay
                // disjoint. The loser is closed by its `JobCancelled`
                // (reason `superseded`); a winning replica is closed
                // by the logical invocation's terminal event below.
                if let Some(s) = self.items.get(invocation).copied() {
                    let parent = tree.spans[s.span.0].parent;
                    let span = Self::open(
                        &mut tree,
                        parent,
                        SpanKind::DataItem,
                        attempt.to_string(),
                        at,
                    );
                    tree.spans[span.0]
                        .attrs
                        .push(("replica_of".to_string(), invocation.to_string()));
                    tree.spans[span.0]
                        .attrs
                        .push(("replica".to_string(), replica.to_string()));
                    self.items.insert(*attempt, ItemState { span, mark: at });
                    self.attempts_of
                        .entry(*invocation)
                        .or_default()
                        .push(*attempt);
                }
            }
            TraceEvent::CeBlacklisted { ce, failures, .. } => {
                tree.spans[root.0].attrs.push((
                    format!("blacklisted_ce{ce}"),
                    format!("{failures} failures"),
                ));
            }
            TraceEvent::JobCompleted { invocation, .. } => {
                if let Some(s) = self.items.remove(invocation) {
                    tree.spans[s.span.0].end = Some(at);
                    Self::close_ancestors(&mut tree, s.span, at);
                    Self::close_attempts(
                        &mut self.attempts_of,
                        &mut self.items,
                        &mut tree,
                        *invocation,
                        s.span,
                        at,
                    );
                }
            }
            TraceEvent::JobFailed {
                invocation, error, ..
            } => {
                if let Some(s) = self.items.remove(invocation) {
                    tree.spans[s.span.0].end = Some(at);
                    tree.spans[s.span.0]
                        .attrs
                        .push(("error".to_string(), error.clone()));
                    Self::close_ancestors(&mut tree, s.span, at);
                    Self::close_attempts(
                        &mut self.attempts_of,
                        &mut self.items,
                        &mut tree,
                        *invocation,
                        s.span,
                        at,
                    );
                }
            }
            TraceEvent::JobCancelled {
                invocation, reason, ..
            } => {
                if let Some(s) = self.items.remove(invocation) {
                    tree.spans[s.span.0].end = Some(at);
                    tree.spans[s.span.0]
                        .attrs
                        .push(("cancelled".to_string(), (*reason).to_string()));
                    Self::close_ancestors(&mut tree, s.span, at);
                    Self::close_attempts(
                        &mut self.attempts_of,
                        &mut self.items,
                        &mut tree,
                        *invocation,
                        s.span,
                        at,
                    );
                }
            }
            _ => {}
        }
    }
}

impl SpanSink {
    /// Drop every fresh attempt tag registered for `logical` and close
    /// any still-open sibling replica span at `at` (a winning replica
    /// never receives its own terminal event — the logical invocation
    /// does).
    fn close_attempts(
        attempts_of: &mut HashMap<u64, Vec<u64>>,
        items: &mut HashMap<u64, ItemState>,
        tree: &mut SpanTree,
        logical: u64,
        item: SpanId,
        at: SimTime,
    ) {
        for tag in attempts_of.remove(&logical).unwrap_or_default() {
            if let Some(a) = items.remove(&tag) {
                if a.span != item && tree.spans[a.span.0].end.is_none() {
                    tree.spans[a.span.0].end = Some(at);
                }
            }
        }
    }

    /// Extend every ancestor's end to at least `at`.
    fn close_ancestors(tree: &mut SpanTree, from: SpanId, at: SimTime) {
        let mut cursor = tree.spans[from.0].parent;
        while let Some(id) = cursor {
            if tree.spans[id.0].end.is_none_or(|e| e < at) {
                tree.spans[id.0].end = Some(at);
            }
            cursor = tree.spans[id.0].parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// Full grid lifecycle of one invocation under one service.
    fn lifecycle(sink: &mut SpanSink, inv: u64, proc: &str, base: f64) {
        sink.record(&TraceEvent::JobSubmitted {
            at: t(base),
            invocation: inv,
            processor: proc.into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::GridSubmitted {
            at: t(base + 10.0),
            invocation: inv,
            name: format!("j{inv}"),
        });
        sink.record(&TraceEvent::GridMatched {
            at: t(base + 15.0),
            invocation: inv,
            ce: 2,
        });
        sink.record(&TraceEvent::GridEnqueued {
            at: t(base + 20.0),
            invocation: inv,
            ce: 2,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(base + 50.0),
            invocation: inv,
            ce: 2,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(base + 150.0),
            invocation: inv,
            ce: 2,
            success: true,
        });
        sink.record(&TraceEvent::GridDelivered {
            at: t(base + 155.0),
            invocation: inv,
            success: true,
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(base + 155.0),
            invocation: inv,
            processor: proc.into(),
        });
    }

    #[test]
    fn builds_four_level_hierarchy_with_five_phases() {
        let (mut sink, buf) = SpanSink::new();
        lifecycle(&mut sink, 7, "crestLines", 0.0);
        let tree = buf.snapshot();
        let root = tree.roots().next().expect("root span");
        assert_eq!(root.kind, SpanKind::Workflow);
        assert_eq!(root.end, Some(t(155.0)));
        let service = tree.children(root.id).next().expect("service span");
        assert_eq!(service.kind, SpanKind::Service);
        assert_eq!(service.name, "crestLines");
        assert_eq!(service.end, Some(t(155.0)));
        let item = tree.children(service.id).next().expect("item span");
        assert_eq!(item.kind, SpanKind::DataItem);
        let phases: Vec<&'static str> = tree.children(item.id).map(|s| s.kind.name()).collect();
        assert_eq!(
            phases,
            [
                "submission",
                "scheduling",
                "queuing",
                "execution",
                "transfer"
            ]
        );
        // Phase windows partition [0, 155]: 10 + 10 + 30 + 100 + 5.
        let durs = tree.phase_durations();
        assert_eq!(durs["submission"], (1, 10.0));
        assert_eq!(durs["scheduling"], (1, 10.0));
        assert_eq!(durs["queuing"], (1, 30.0));
        assert_eq!(durs["execution"], (1, 100.0));
        assert_eq!(durs["transfer"], (1, 5.0));
        assert!((tree.overhead_secs() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn services_are_shared_and_extended_across_items() {
        let (mut sink, buf) = SpanSink::new();
        lifecycle(&mut sink, 0, "p", 0.0);
        lifecycle(&mut sink, 1, "p", 200.0);
        let tree = buf.snapshot();
        let services: Vec<&Span> = tree.of_kind(SpanKind::Service).collect();
        assert_eq!(services.len(), 1, "one span per service");
        assert_eq!(services[0].start, t(0.0));
        assert_eq!(services[0].end, Some(t(355.0)));
        assert_eq!(tree.of_kind(SpanKind::DataItem).count(), 2);
    }

    #[test]
    fn resubmission_yields_repeated_phases_under_one_item() {
        let (mut sink, buf) = SpanSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 3,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::GridSubmitted {
            at: t(5.0),
            invocation: 3,
            name: "j3".into(),
        });
        sink.record(&TraceEvent::GridEnqueued {
            at: t(10.0),
            invocation: 3,
            ce: 0,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(20.0),
            invocation: 3,
            ce: 0,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(30.0),
            invocation: 3,
            ce: 0,
            success: false,
        });
        sink.record(&TraceEvent::GridResubmitted {
            at: t(40.0),
            invocation: 3,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridEnqueued {
            at: t(45.0),
            invocation: 3,
            ce: 1,
            attempt: 2,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(50.0),
            invocation: 3,
            ce: 1,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(60.0),
            invocation: 3,
            ce: 1,
            success: true,
        });
        sink.record(&TraceEvent::GridDelivered {
            at: t(62.0),
            invocation: 3,
            success: true,
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(62.0),
            invocation: 3,
            processor: "p".into(),
        });
        let tree = buf.snapshot();
        let durs = tree.phase_durations();
        assert_eq!(durs["execution"], (2, 20.0), "two attempts");
        // Second scheduling span starts at the resubmission (40), not
        // at the failed finish (30): 45 − 40 = 5.
        assert_eq!(durs["scheduling"].0, 2);
        assert!((durs["scheduling"].1 - (5.0 + 5.0)).abs() < 1e-9);
        let execs: Vec<&Span> = tree
            .of_kind(SpanKind::Phase(GridPhase::Execution))
            .collect();
        assert_eq!(execs[0].attr("success"), Some("false"));
        assert_eq!(execs[1].attr("success"), Some("true"));
    }

    #[test]
    fn timeout_resubmit_continues_phases_under_the_same_item() {
        let (mut sink, buf) = SpanSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 5,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::GridSubmitted {
            at: t(2.0),
            invocation: 5,
            name: "j5".into(),
        });
        sink.record(&TraceEvent::JobTimedOut {
            at: t(60.0),
            invocation: 5,
            processor: "p".into(),
            timeout_secs: 60.0,
            action: "resubmit",
        });
        // The timeout resubmit carries a fresh backend tag (42): its
        // grid events must still land under item 5.
        sink.record(&TraceEvent::JobResubmitted {
            at: t(60.0),
            invocation: 5,
            processor: "p".into(),
            retry: 1,
            attempt: 42,
        });
        sink.record(&TraceEvent::GridEnqueued {
            at: t(65.0),
            invocation: 42,
            ce: 1,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(70.0),
            invocation: 42,
            ce: 1,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(80.0),
            invocation: 42,
            ce: 1,
            success: true,
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(82.0),
            invocation: 5,
            processor: "p".into(),
        });
        let tree = buf.snapshot();
        let items: Vec<&Span> = tree.of_kind(SpanKind::DataItem).collect();
        assert_eq!(items.len(), 1, "resubmits do not grow sibling items");
        let item = items[0];
        assert_eq!(item.attr("timed_out"), Some("resubmit"));
        assert_eq!(item.end, Some(t(82.0)));
        // The fresh attempt's phases hang off the one item span, and
        // its scheduling starts at the resubmission (60), not at the
        // submission: 65 − 60 = 5.
        let durs = tree.phase_durations();
        assert_eq!(durs["scheduling"], (1, 5.0));
        assert_eq!(durs["execution"], (1, 10.0));
        let sched = tree
            .of_kind(SpanKind::Phase(GridPhase::Scheduling))
            .next()
            .unwrap();
        assert_eq!(sched.parent, Some(item.id));
    }

    #[test]
    fn replicas_are_sibling_spans_and_losers_do_not_linger() {
        let (mut sink, buf) = SpanSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 7,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::GridSubmitted {
            at: t(1.0),
            invocation: 7,
            name: "j7".into(),
        });
        sink.record(&TraceEvent::JobTimedOut {
            at: t(50.0),
            invocation: 7,
            processor: "p".into(),
            timeout_secs: 50.0,
            action: "replicate",
        });
        sink.record(&TraceEvent::JobReplicated {
            at: t(50.0),
            invocation: 7,
            processor: "p".into(),
            replica: 1,
            attempt: 99,
        });
        // The replica runs its own grid chain…
        sink.record(&TraceEvent::GridEnqueued {
            at: t(55.0),
            invocation: 99,
            ce: 2,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(60.0),
            invocation: 99,
            ce: 2,
        });
        // …the original loses the race and is superseded, then the
        // logical invocation completes.
        sink.record(&TraceEvent::GridFinished {
            at: t(90.0),
            invocation: 99,
            ce: 2,
            success: true,
        });
        sink.record(&TraceEvent::JobCancelled {
            at: t(92.0),
            invocation: 7,
            processor: "p".into(),
            reason: "superseded",
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(92.0),
            invocation: 7,
            processor: "p".into(),
        });
        let tree = buf.snapshot();
        let items: Vec<&Span> = tree.of_kind(SpanKind::DataItem).collect();
        assert_eq!(items.len(), 2, "replica appears as a sibling item");
        let (orig, replica) = (items[0], items[1]);
        assert_eq!(orig.parent, replica.parent, "siblings under one service");
        assert_eq!(replica.attr("replica_of"), Some("7"));
        assert_eq!(replica.attr("replica"), Some("1"));
        // Every span is closed — no open replica after the terminal
        // event, even though only the original got a JobCancelled.
        assert!(tree.spans().iter().all(|s| s.end.is_some()));
        assert_eq!(replica.end, Some(t(92.0)));
        // The replica's execution phase sits under the replica span.
        let exec = tree
            .of_kind(SpanKind::Phase(GridPhase::Execution))
            .next()
            .unwrap();
        assert_eq!(exec.parent, Some(replica.id));
    }

    #[test]
    fn ce_blacklisting_annotates_the_workflow_root() {
        let (mut sink, buf) = SpanSink::new();
        sink.record(&TraceEvent::CeBlacklisted {
            at: t(30.0),
            ce: 4,
            failures: 3,
        });
        let tree = buf.snapshot();
        let root = tree.roots().next().expect("root");
        assert_eq!(root.attr("blacklisted_ce4"), Some("3 failures"));
    }

    #[test]
    fn non_grid_backend_yields_items_without_phases() {
        let (mut sink, buf) = SpanSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 0,
            processor: "local".into(),
            grid: false,
            batched: 1,
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(9.0),
            invocation: 0,
            processor: "local".into(),
        });
        let tree = buf.snapshot();
        assert_eq!(tree.of_kind(SpanKind::DataItem).count(), 1);
        assert!(tree.phase_durations().is_empty());
        assert_eq!(tree.overhead_secs(), 0.0);
    }

    #[test]
    fn failed_item_records_the_error_and_render_is_indented() {
        let (mut sink, buf) = SpanSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 1,
            processor: "p".into(),
            grid: true,
            batched: 3,
        });
        sink.record(&TraceEvent::JobFailed {
            at: t(4.0),
            invocation: 1,
            processor: "p".into(),
            error: "boom".into(),
        });
        let tree = buf.snapshot();
        let item = tree.of_kind(SpanKind::DataItem).next().unwrap();
        assert_eq!(item.attr("error"), Some("boom"));
        assert_eq!(item.attr("batched"), Some("3"));
        let text = tree.render();
        assert!(text.starts_with("workflow"), "{text}");
        assert!(text.contains("\n  service p"), "{text}");
        assert!(text.contains("\n    item 1"), "{text}");
        let jsonl = tree.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"error\":\"boom\""));
    }
}
