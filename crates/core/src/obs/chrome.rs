//! Chrome trace-event export: render a finished run as a JSON file
//! loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Each service gets its own track; data-parallel invocations that
//! overlap in time are spread over per-service *lanes* (one thread id
//! per lane) so DP width is directly visible, and service parallelism
//! shows up as overlap between tracks. Every invocation renders as two
//! complete (`ph:"X"`) spans: the grid-overhead wait (submitted →
//! started) and the execution (started → finished). With a metrics
//! registry, gauge timelines (queue depth, in-flight invocations) are
//! added as counter (`ph:"C"`) tracks.

use super::json::JsonObject;
use super::metrics::MetricsRegistry;
use crate::trace::WorkflowResult;

const PID: i64 = 1;

fn usec(secs: f64) -> f64 {
    secs * 1e6
}

/// Export a run as Chrome trace JSON.
pub fn chrome_trace(result: &WorkflowResult) -> String {
    chrome_trace_with_metrics(result, None)
}

/// Export a run, adding counter tracks from `metrics` gauge timelines.
pub fn chrome_trace_with_metrics(
    result: &WorkflowResult,
    metrics: Option<&MetricsRegistry>,
) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        JsonObject::new()
            .str("ph", "M")
            .str("name", "process_name")
            .int("pid", PID)
            .int("tid", 0)
            .raw(
                "args",
                &JsonObject::new().str("name", "moteur enactor").finish(),
            )
            .finish(),
    );

    // Service order: first appearance in the invocation record stream.
    let mut processors: Vec<&str> = Vec::new();
    for rec in &result.invocations {
        if !processors.contains(&rec.processor.as_str()) {
            processors.push(&rec.processor);
        }
    }

    let mut next_tid: i64 = 1;
    for proc in &processors {
        let mut records = result.invocations_of(proc);
        // Total order (SimTime is integral µs) with the data index as
        // tie-breaker: equal-timestamp events always serialise the same
        // way, keeping the export byte-reproducible.
        records.sort_by(|a, b| a.submitted.cmp(&b.submitted).then(a.index.cmp(&b.index)));
        // Greedy lane allocation: a record reuses the first lane that
        // is free by the time it is submitted.
        let mut lane_ends: Vec<f64> = Vec::new();
        let mut lane_tids: Vec<i64> = Vec::new();
        for rec in records {
            let sub = rec.submitted.as_secs_f64();
            let start = rec.started.as_secs_f64();
            let end = rec.finished.as_secs_f64();
            let lane = match lane_ends.iter().position(|&e| e <= sub + 1e-9) {
                Some(i) => i,
                None => {
                    lane_ends.push(f64::NEG_INFINITY);
                    let tid = next_tid;
                    next_tid += 1;
                    lane_tids.push(tid);
                    let label = if lane_ends.len() == 1 {
                        (*proc).to_string()
                    } else {
                        format!("{proc} #{}", lane_ends.len())
                    };
                    events.push(
                        JsonObject::new()
                            .str("ph", "M")
                            .str("name", "thread_name")
                            .int("pid", PID)
                            .int("tid", tid)
                            .raw("args", &JsonObject::new().str("name", &label).finish())
                            .finish(),
                    );
                    lane_ends.len() - 1
                }
            };
            lane_ends[lane] = end;
            let tid = lane_tids[lane];
            if start > sub {
                events.push(
                    JsonObject::new()
                        .str("ph", "X")
                        .str("name", &format!("{proc} (wait)"))
                        .str("cat", "wait")
                        .int("pid", PID)
                        .int("tid", tid)
                        .num("ts", usec(sub))
                        .num("dur", usec(start - sub))
                        .raw(
                            "args",
                            &JsonObject::new()
                                .str("index", &rec.index.to_string())
                                .finish(),
                        )
                        .finish(),
                );
            }
            events.push(
                JsonObject::new()
                    .str("ph", "X")
                    .str("name", proc)
                    .str("cat", "exec")
                    .int("pid", PID)
                    .int("tid", tid)
                    .num("ts", usec(start))
                    .num("dur", usec((end - start).max(0.0)))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .str("index", &rec.index.to_string())
                            .uint("retries", u64::from(rec.retries))
                            .finish(),
                    )
                    .finish(),
            );
        }
    }

    if let Some(reg) = metrics {
        for (name, gauge) in reg.gauges() {
            for (t, v) in &gauge.timeline {
                events.push(
                    JsonObject::new()
                        .str("ph", "C")
                        .str("name", name)
                        .int("pid", PID)
                        .num("ts", usec(*t))
                        .raw("args", &JsonObject::new().int("value", *v).finish())
                        .finish(),
                );
            }
        }
    }

    JsonObject::new()
        .raw("traceEvents", &super::json::array(events))
        .str("displayTimeUnit", "ms")
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::DataIndex;
    use crate::trace::InvocationRecord;
    use moteur_gridsim::{SimDuration, SimTime};
    use std::collections::HashMap;

    fn rec(proc: &str, i: u32, sub: f64, start: f64, end: f64) -> InvocationRecord {
        InvocationRecord {
            processor: proc.into(),
            index: DataIndex::single(i),
            submitted: SimTime::from_secs_f64(sub),
            started: SimTime::from_secs_f64(start),
            finished: SimTime::from_secs_f64(end),
            retries: 0,
        }
    }

    fn result(invocations: Vec<InvocationRecord>) -> WorkflowResult {
        WorkflowResult {
            sink_outputs: HashMap::new(),
            sink_counts: HashMap::new(),
            makespan: SimDuration::from_secs(1),
            invocations,
            jobs_submitted: 0,
            bytes_transferred: 0,
            quarantined: vec![],
        }
    }

    #[test]
    fn overlapping_invocations_get_distinct_lanes() {
        // Two overlapping P1 invocations (DP) and one disjoint one.
        let r = result(vec![
            rec("P1", 0, 0.0, 1.0, 10.0),
            rec("P1", 1, 0.0, 2.0, 12.0),
            rec("P1", 2, 20.0, 21.0, 30.0),
        ]);
        let json = chrome_trace(&r);
        assert!(json.contains("\"name\":\"P1\""));
        assert!(
            json.contains("\"name\":\"P1 #2\""),
            "second lane needed: {json}"
        );
        assert!(
            !json.contains("\"name\":\"P1 #3\""),
            "third record reuses lane 1"
        );
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn wait_and_exec_spans_are_emitted_in_microseconds() {
        let r = result(vec![rec("P2", 0, 1.0, 3.0, 4.0)]);
        let json = chrome_trace(&r);
        assert!(json.contains("\"name\":\"P2 (wait)\""));
        assert!(json.contains("\"ts\":1000000"));
        assert!(json.contains("\"dur\":2000000"), "wait = 2 s: {json}");
        assert!(json.contains("\"ts\":3000000"));
    }

    #[test]
    fn gauge_timelines_become_counter_tracks() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("queue_depth.ce0", 0.5, 3);
        let r = result(vec![rec("P1", 0, 0.0, 0.0, 1.0)]);
        let json = chrome_trace_with_metrics(&r, Some(&reg));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"queue_depth.ce0\""));
        assert!(json.contains("\"value\":3"));
    }

    #[test]
    fn empty_run_still_produces_a_valid_envelope() {
        let json = chrome_trace(&result(vec![]));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("process_name"));
    }
}
