//! Bottleneck attribution over [`super::timeline::ResourceStats`].
//!
//! The series answer "what happened when"; this pass answers the
//! planner's question: **what bound the makespan?** Three phase totals
//! compete — CE batch-queue wait, stage-in/stage-out transfer, and
//! pure compute — and the dominant one names the regime:
//!
//! - queue-wait-dominated ⇒ add CEs or raise `service_parallelism`
//!   (the paper's large-`n_data` EGEE regime),
//! - transfer-dominated ⇒ batch data or co-locate (the paper's
//!   `data_batching` lever; ROADMAP item 3's partitioner),
//! - compute-dominated ⇒ the grid is earning its keep; only faster
//!   codes help.
//!
//! The report also surfaces **utilization skew** across CEs (an idle
//! CE next to a saturated one means the broker's rank function, not
//! capacity, is the problem) and **stragglers**: completed invocations
//! whose submission→completion duration exceeds 1.5× their service's
//! p95 — candidates for the PR 5 replication policy.

use super::json::{self, JsonObject};
use super::timeline::ResourceStats;
use moteur_gridsim::percentile;

/// Straggler threshold: duration > `STRAGGLER_FACTOR` × service p95.
pub const STRAGGLER_FACTOR: f64 = 1.5;

/// Minimum completed samples before a service's p95 is meaningful.
pub const STRAGGLER_MIN_SAMPLES: usize = 4;

/// Which phase dominated the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// CE batch-queue wait is the largest phase.
    QueueWait,
    /// Stage-in/stage-out transfer time is the largest phase.
    Transfer,
    /// Pure compute is the largest phase.
    Compute,
    /// No phase time was recorded (empty or cache-only run).
    Idle,
}

impl Bottleneck {
    pub fn as_str(self) -> &'static str {
        match self {
            Bottleneck::QueueWait => "queue-wait",
            Bottleneck::Transfer => "transfer",
            Bottleneck::Compute => "compute",
            Bottleneck::Idle => "idle",
        }
    }
}

/// A completed invocation slower than its service's p95 envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    pub service: String,
    pub invocation: u64,
    pub secs: f64,
    /// The service's p95 the duration was judged against.
    pub p95_secs: f64,
}

/// The attribution verdict.
#[derive(Debug, Clone)]
pub struct DetectReport {
    pub verdict: Bottleneck,
    /// Dominant phase share of total attributed time, in `0..=1`.
    pub dominant_fraction: f64,
    pub queue_wait_secs: f64,
    pub transfer_secs: f64,
    pub compute_secs: f64,
    /// Busy fraction per CE over the observed horizon.
    pub ce_utilization: Vec<(usize, f64)>,
    /// Max − min CE utilization (0 with fewer than two CEs).
    pub utilization_skew: f64,
    pub stragglers: Vec<Straggler>,
    pub slo_breaches: usize,
}

/// Attribute the run's time to a dominant phase and flag outliers.
pub fn analyze(stats: &ResourceStats) -> DetectReport {
    let q = stats.queue_wait_secs;
    let x = stats.transfer_secs;
    let c = stats.compute_secs;
    let total = q + x + c;
    let (verdict, dominant) = if total <= 0.0 {
        (Bottleneck::Idle, 0.0)
    } else if q >= x && q >= c {
        (Bottleneck::QueueWait, q)
    } else if x >= c {
        (Bottleneck::Transfer, x)
    } else {
        (Bottleneck::Compute, c)
    };
    let dominant_fraction = if total > 0.0 { dominant / total } else { 0.0 };

    let ce_utilization: Vec<(usize, f64)> = stats.ce_utilization().into_iter().collect();
    let utilization_skew = if ce_utilization.len() >= 2 {
        let max = ce_utilization.iter().map(|&(_, u)| u).fold(0.0, f64::max);
        let min = ce_utilization
            .iter()
            .map(|&(_, u)| u)
            .fold(f64::INFINITY, f64::min);
        (max - min).max(0.0)
    } else {
        0.0
    };

    let mut stragglers = Vec::new();
    for (service, samples) in &stats.service_durations {
        if samples.len() < STRAGGLER_MIN_SAMPLES {
            continue;
        }
        let secs: Vec<f64> = samples.iter().map(|s| s.secs).collect();
        let p95 = percentile(&secs, 0.95);
        if p95 <= 0.0 {
            continue;
        }
        for s in samples {
            if s.secs > STRAGGLER_FACTOR * p95 {
                stragglers.push(Straggler {
                    service: service.clone(),
                    invocation: s.invocation,
                    secs: s.secs,
                    p95_secs: p95,
                });
            }
        }
    }

    DetectReport {
        verdict,
        dominant_fraction,
        queue_wait_secs: q,
        transfer_secs: x,
        compute_secs: c,
        ce_utilization,
        utilization_skew,
        stragglers,
        slo_breaches: stats.slo_breaches,
    }
}

impl DetectReport {
    /// Single-line JSON (stable field order, virtual-time only).
    pub fn to_json(&self) -> String {
        let ces = json::array(self.ce_utilization.iter().map(|&(ce, u)| {
            JsonObject::new()
                .uint("ce", ce as u64)
                .num("utilization", u)
                .finish()
        }));
        let stragglers = json::array(self.stragglers.iter().map(|s| {
            JsonObject::new()
                .str("service", &s.service)
                .uint("invocation", s.invocation)
                .num("secs", s.secs)
                .num("p95_secs", s.p95_secs)
                .finish()
        }));
        JsonObject::new()
            .str("verdict", self.verdict.as_str())
            .num("dominant_fraction", self.dominant_fraction)
            .num("queue_wait_secs", self.queue_wait_secs)
            .num("transfer_secs", self.transfer_secs)
            .num("compute_secs", self.compute_secs)
            .num("utilization_skew", self.utilization_skew)
            .uint("slo_breaches", self.slo_breaches as u64)
            .raw("ce_utilization", &ces)
            .raw("stragglers", &stragglers)
            .finish()
    }

    /// Human-readable report for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bottleneck: {} ({:.0}% of {:.0}s attributed)\n  queue-wait {:.0}s · transfer {:.0}s · compute {:.0}s\n",
            self.verdict.as_str(),
            self.dominant_fraction * 100.0,
            self.queue_wait_secs + self.transfer_secs + self.compute_secs,
            self.queue_wait_secs,
            self.transfer_secs,
            self.compute_secs,
        );
        if !self.ce_utilization.is_empty() {
            let cells: Vec<String> = self
                .ce_utilization
                .iter()
                .map(|(ce, u)| format!("ce{ce}={:.0}%", u * 100.0))
                .collect();
            out.push_str(&format!(
                "  utilization: {} (skew {:.0}%)\n",
                cells.join(" "),
                self.utilization_skew * 100.0
            ));
        }
        if self.stragglers.is_empty() {
            out.push_str("  stragglers: none\n");
        } else {
            out.push_str(&format!("  stragglers: {}\n", self.stragglers.len()));
            for s in &self.stragglers {
                out.push_str(&format!(
                    "    {} inv {}: {:.0}s (p95 {:.0}s)\n",
                    s.service, s.invocation, s.secs, s.p95_secs
                ));
            }
        }
        if self.slo_breaches > 0 {
            out.push_str(&format!("  SLO breaches: {}\n", self.slo_breaches));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::timeline::DurationSample;

    fn stats(q: f64, x: f64, c: f64) -> ResourceStats {
        ResourceStats {
            queue_wait_secs: q,
            transfer_secs: x,
            compute_secs: c,
            ..ResourceStats::default()
        }
    }

    #[test]
    fn verdict_picks_the_dominant_phase() {
        assert_eq!(
            analyze(&stats(100.0, 10.0, 20.0)).verdict,
            Bottleneck::QueueWait
        );
        assert_eq!(
            analyze(&stats(5.0, 90.0, 20.0)).verdict,
            Bottleneck::Transfer
        );
        assert_eq!(
            analyze(&stats(5.0, 10.0, 200.0)).verdict,
            Bottleneck::Compute
        );
        assert_eq!(analyze(&stats(0.0, 0.0, 0.0)).verdict, Bottleneck::Idle);
        let r = analyze(&stats(60.0, 20.0, 20.0));
        assert!((r.dominant_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn stragglers_flagged_against_service_p95() {
        let mut s = ResourceStats::default();
        let samples: Vec<DurationSample> = (0..10)
            .map(|i| DurationSample {
                invocation: i,
                secs: if i == 9 { 100.0 } else { 10.0 },
            })
            .collect();
        s.service_durations.insert("svc".into(), samples);
        // p95 of [10 ×9, 100] lands on 100 via nearest-rank? Either
        // way the 100s outlier must only be flagged when it exceeds
        // 1.5× p95 — assert the rule, not the percentile method.
        let r = analyze(&s);
        let p95 = percentile(
            &(0..10)
                .map(|i| if i == 9 { 100.0 } else { 10.0 })
                .collect::<Vec<_>>(),
            0.95,
        );
        let expect_flagged = 100.0 > STRAGGLER_FACTOR * p95;
        assert_eq!(!r.stragglers.is_empty(), expect_flagged);
        if let Some(st) = r.stragglers.first() {
            assert_eq!(st.invocation, 9);
            assert_eq!(st.service, "svc");
        }
        // Too few samples: never flagged.
        let mut few = ResourceStats::default();
        few.service_durations.insert(
            "svc".into(),
            vec![
                DurationSample {
                    invocation: 0,
                    secs: 1.0,
                },
                DurationSample {
                    invocation: 1,
                    secs: 100.0,
                },
            ],
        );
        assert!(analyze(&few).stragglers.is_empty());
    }

    #[test]
    fn report_serialises_and_renders() {
        let r = analyze(&stats(100.0, 10.0, 20.0));
        let j = r.to_json();
        assert!(j.contains("\"verdict\":\"queue-wait\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
        let text = r.render();
        assert!(text.contains("bottleneck: queue-wait"), "{text}");
        assert!(text.contains("stragglers: none"), "{text}");
    }
}
