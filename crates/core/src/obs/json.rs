//! Minimal JSON construction — just enough for event and metric export
//! without an external serialisation dependency.
//!
//! Output is always a single line (no pretty-printing) so it can be
//! embedded in JSONL streams and Chrome trace arrays directly.

use std::fmt::Write as _;

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental single-line JSON object writer.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&num(v));
        self
    }

    pub fn int(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn uint(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Insert pre-rendered JSON (an object, array or literal) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Join pre-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builds_valid_json() {
        let s = JsonObject::new()
            .str("type", "x")
            .num("t", 1.5)
            .int("n", -2)
            .bool("ok", true)
            .raw("a", "[1,2]")
            .finish();
        assert_eq!(
            s,
            "{\"type\":\"x\",\"t\":1.5,\"n\":-2,\"ok\":true,\"a\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.0), "2");
    }

    #[test]
    fn array_joins() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
