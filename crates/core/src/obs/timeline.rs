//! Virtual-time resource time-series: where time and bytes go.
//!
//! The paper reasons about makespan with aggregate equations; at
//! production scale the binding question becomes *which* CE queue
//! saturates, *which* link carries the intermediate data, and whether
//! the run is tracking its prediction. This module records grid and
//! enactor state as named series over **virtual time only** — no wall
//! clock anywhere, so the output is byte-stable for a fixed workflow
//! and seed:
//!
//! - per-CE queue depth, running jobs and utilization
//!   (`ce<N>.queue_depth` / `ce<N>.running` / `ce<N>.utilization`),
//! - per-link bytes and instantaneous bandwidth occupancy
//!   (`link.ce<N>.bytes` / `link.ce<N>.bandwidth`),
//! - stored bytes on the storage element backing the data manager
//!   (`store.bytes` / `store.entries`),
//! - enactor gauges (`enactor.inflight` / `enactor.deferred` /
//!   `enactor.quarantined`) and lifecycle counters.
//!
//! Every series has a **fixed capacity**: when it fills, every other
//! point is dropped and the acceptance stride doubles, so long runs
//! degrade resolution instead of growing memory — deterministic
//! downsampling, dependent only on the sample sequence. Counters keep
//! an exact running `total` untouched by downsampling (the acceptance
//! invariant "per-link byte totals sum to the enactor's transferred
//! bytes" survives any capacity).
//!
//! Export: versioned JSON ([`TIMELINE_SCHEMA`]), CSV, and an ASCII
//! sparkline/heatmap renderer (`moteur timeline render`). The
//! [`TimelineSink`] also aggregates [`ResourceStats`] — phase totals,
//! per-CE busy integrals, per-service durations — the input to
//! [`super::detect`].

use super::json::{self, JsonObject};
use super::{EventSink, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Version tag of the timeline JSON export.
pub const TIMELINE_SCHEMA: &str = "moteur/timeline/v1";

/// Default per-series point capacity.
pub const DEFAULT_CAPACITY: usize = 512;

/// What a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A level sampled at transitions (queue depth, inflight count).
    Gauge,
    /// A monotonic accumulation; points sample the running total.
    Counter,
}

impl SeriesKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }
}

/// One named time-series with deterministic fixed-capacity
/// downsampling.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub kind: SeriesKind,
    capacity: usize,
    points: Vec<(f64, f64)>,
    /// Only every `keep_every`-th sample is stored; doubles whenever
    /// the buffer fills and every other point is dropped.
    keep_every: u64,
    /// Samples offered since creation.
    seen: u64,
    /// Exact running total (counters only; downsampling never touches
    /// it).
    total: f64,
    /// Most recent sample, always retained so the final state is exact
    /// even when the stride would have skipped it.
    last: Option<(f64, f64)>,
}

impl Series {
    fn new(name: &str, kind: SeriesKind, capacity: usize) -> Series {
        Series {
            name: name.to_string(),
            kind,
            capacity: capacity.max(8),
            points: Vec::new(),
            keep_every: 1,
            seen: 0,
            total: 0.0,
            last: None,
        }
    }

    fn sample(&mut self, t: f64, v: f64) {
        self.last = Some((t, v));
        if self.seen.is_multiple_of(self.keep_every) {
            self.points.push((t, v));
            if self.points.len() >= self.capacity {
                let mut i = 0usize;
                self.points.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.keep_every *= 2;
            }
        }
        self.seen += 1;
    }

    /// Exact accumulated total (counters; 0 for gauges).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Samples offered to the series (before downsampling).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The stored points plus the always-retained latest sample.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        let mut pts = self.points.clone();
        if let Some(last) = self.last {
            if pts.last() != Some(&last) {
                pts.push(last);
            }
        }
        pts
    }

    /// Largest sampled value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.samples()
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
    }
}

/// A set of named series sharing one capacity.
#[derive(Debug, Clone)]
pub struct Timeline {
    capacity: usize,
    series: BTreeMap<String, Series>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::with_capacity(DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Timeline {
        Timeline {
            capacity: capacity.max(8),
            series: BTreeMap::new(),
        }
    }

    fn series_mut(&mut self, name: &str, kind: SeriesKind) -> &mut Series {
        let capacity = self.capacity;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(name, kind, capacity))
    }

    /// Sample a gauge level at virtual time `t`.
    pub fn gauge(&mut self, name: &str, t: f64, value: f64) {
        self.series_mut(name, SeriesKind::Gauge).sample(t, value);
    }

    /// Add `delta` to a counter and sample the running total.
    pub fn counter(&mut self, name: &str, t: f64, delta: f64) {
        let s = self.series_mut(name, SeriesKind::Counter);
        s.total += delta;
        let total = s.total;
        s.sample(t, total);
    }

    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All series in name order (deterministic iteration).
    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Versioned single-line JSON export ([`TIMELINE_SCHEMA`]),
    /// byte-stable for a fixed event sequence.
    pub fn to_json(&self) -> String {
        let series = json::array(self.series.values().map(|s| {
            let points = json::array(
                s.samples()
                    .iter()
                    .map(|&(t, v)| format!("[{},{}]", json::num(t), json::num(v))),
            );
            let o = JsonObject::new()
                .str("name", &s.name)
                .str("kind", s.kind.as_str())
                .uint("seen", s.seen);
            let o = match s.kind {
                SeriesKind::Counter => o.num("total", s.total),
                SeriesKind::Gauge => o,
            };
            o.raw("points", &points).finish()
        }));
        JsonObject::new()
            .str("schema", TIMELINE_SCHEMA)
            .uint("capacity", self.capacity as u64)
            .raw("series", &series)
            .finish()
    }

    /// CSV export: `series,kind,t,value` in series-name order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,kind,t,value\n");
        for s in self.series.values() {
            for (t, v) in s.samples() {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    s.name,
                    s.kind.as_str(),
                    json::num(t),
                    json::num(v)
                ));
            }
        }
        out
    }

    /// Parse a [`Timeline::to_json`] export back (for
    /// `moteur timeline render`).
    pub fn from_json(text: &str) -> Result<Timeline, String> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object().ok_or("timeline: not a JSON object")?;
        match obj.get("schema").and_then(JsonValue::as_str) {
            Some(TIMELINE_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported timeline schema `{other}`")),
            None => return Err("timeline: missing schema field".into()),
        }
        let capacity = obj
            .get("capacity")
            .and_then(JsonValue::as_f64)
            .unwrap_or(DEFAULT_CAPACITY as f64) as usize;
        let mut timeline = Timeline::with_capacity(capacity);
        let series = obj
            .get("series")
            .and_then(JsonValue::as_array)
            .ok_or("timeline: missing series array")?;
        for entry in series {
            let e = entry.as_object().ok_or("timeline: series not an object")?;
            let name = e
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("timeline: series without name")?;
            let kind = match e.get("kind").and_then(JsonValue::as_str) {
                Some("counter") => SeriesKind::Counter,
                _ => SeriesKind::Gauge,
            };
            let mut s = Series::new(name, kind, capacity);
            if let Some(points) = e.get("points").and_then(JsonValue::as_array) {
                for p in points {
                    if let Some(pair) = p.as_array() {
                        if let (Some(t), Some(v)) = (
                            pair.first().and_then(JsonValue::as_f64),
                            pair.get(1).and_then(JsonValue::as_f64),
                        ) {
                            s.points.push((t, v));
                            s.last = Some((t, v));
                        }
                    }
                }
            }
            s.seen = e.get("seen").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
            s.total = e.get("total").and_then(JsonValue::as_f64).unwrap_or(0.0);
            timeline.series.insert(s.name.clone(), s);
        }
        Ok(timeline)
    }

    /// Latest virtual time across all series.
    pub fn t_end(&self) -> f64 {
        self.series
            .values()
            .filter_map(|s| s.last.map(|(t, _)| t))
            .fold(0.0f64, f64::max)
    }

    /// ASCII overview: one sparkline row per series.
    pub fn render(&self, width: usize) -> String {
        let width = width.clamp(10, 200);
        let t_end = self.t_end();
        let label_w = self
            .series
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = format!(
            "timeline ({} series, t = 0..{:.0}s, {} cols)\n",
            self.series.len(),
            t_end,
            width
        );
        if self.series.is_empty() {
            out.push_str("(empty)\n");
            return out;
        }
        for s in self.series.values() {
            let buckets = bucketize(&s.samples(), t_end, width);
            let peak = buckets.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
            let row: String = buckets
                .iter()
                .map(|b| match b {
                    None => ' ',
                    Some(v) => shade(*v, peak),
                })
                .collect();
            let last = s.last.map_or(0.0, |(_, v)| v);
            out.push_str(&format!(
                "{:label_w$} |{row}| peak={} last={}\n",
                s.name,
                fmt_value(peak),
                fmt_value(last)
            ));
        }
        out
    }

    /// ASCII heatmap of every series named `<row>.<metric>`: one row
    /// per matching series, columns are time buckets, intensity is
    /// normalised against the global peak.
    pub fn render_heatmap(&self, metric: &str, width: usize) -> String {
        let width = width.clamp(10, 200);
        let suffix = format!(".{metric}");
        let t_end = self.t_end();
        let rows: Vec<&Series> = self
            .series
            .values()
            .filter(|s| s.name.ends_with(&suffix))
            .collect();
        if rows.is_empty() {
            return format!("no `{metric}` series recorded\n");
        }
        let grids: Vec<(String, Vec<Option<f64>>)> = rows
            .iter()
            .map(|s| {
                let label = s.name[..s.name.len() - suffix.len()].to_string();
                (label, bucketize(&s.samples(), t_end, width))
            })
            .collect();
        let peak = grids
            .iter()
            .flat_map(|(_, b)| b.iter().flatten())
            .fold(0.0f64, |a, &b| a.max(b));
        let label_w = grids.iter().map(|(l, _)| l.len()).max().unwrap_or(2);
        let secs_per_col = if width > 0 { t_end / width as f64 } else { 0.0 };
        let mut out = format!(
            "{metric} heatmap (t = 0..{t_end:.0}s, 1 col = {secs_per_col:.0}s, peak = {})\n",
            fmt_value(peak)
        );
        for (label, buckets) in grids {
            let row: String = buckets
                .iter()
                .map(|b| match b {
                    None => ' ',
                    Some(v) => shade(*v, peak),
                })
                .collect();
            out.push_str(&format!("{label:label_w$} |{row}|\n"));
        }
        out
    }
}

/// Render a sample value for the ASCII views: whole numbers bare,
/// small fractions (utilization, ratios) with two decimals.
fn fmt_value(v: f64) -> String {
    if v.abs() < 10.0 && v.fract() != 0.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.0}")
    }
}

/// Bucket samples over `[0, t_end]` into `width` cells, keeping the
/// max per cell (a step-function hold between samples would hide
/// spikes).
fn bucketize(samples: &[(f64, f64)], t_end: f64, width: usize) -> Vec<Option<f64>> {
    let mut buckets: Vec<Option<f64>> = vec![None; width];
    if t_end <= 0.0 || samples.is_empty() {
        if let Some(&(_, v)) = samples.first() {
            buckets[0] = Some(v);
        }
        return buckets;
    }
    for &(t, v) in samples {
        let i = ((t / t_end) * width as f64) as usize;
        let i = i.min(width - 1);
        buckets[i] = Some(buckets[i].map_or(v, |b: f64| b.max(v)));
    }
    buckets
}

/// ASCII intensity ramp (no Unicode — terminals on the grid UI nodes
/// of 2006 did not have it either).
const RAMP: &[u8] = b" .:-=+*#%@";

fn shade(v: f64, peak: f64) -> char {
    if peak <= 0.0 {
        return RAMP[1] as char;
    }
    let idx = ((v / peak) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.clamp(1, RAMP.len() - 1)] as char
}

// ---------------------------------------------------------------------
// Minimal JSON value parser (for `from_json` only)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(JsonValue::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")
                                    .and_then(|h| {
                                    std::str::from_utf8(h).map_err(|_| "bad \\u escape")
                                })?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 code point.
                        let rest = std::str::from_utf8(&b[*pos..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let c = rest.chars().next().expect("non-empty checked");
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

// ---------------------------------------------------------------------
// ResourceStats: exact aggregates alongside the (downsampled) series
// ---------------------------------------------------------------------

/// Per-CE resource aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CeStats {
    /// Integral of busy worker slots over virtual time (slot-seconds).
    pub busy_slot_secs: f64,
    /// Worker-slot capacity (latest observation).
    pub slots: usize,
    /// Largest observed user queue depth.
    pub peak_queue_depth: usize,
    /// Internal: last busy level and its timestamp, for the integral.
    last_busy: usize,
    last_t: f64,
}

/// One per-service grid-job duration sample.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationSample {
    pub invocation: u64,
    pub secs: f64,
}

/// Exact phase and resource aggregates collected by [`TimelineSink`] —
/// unlike the series, these are never downsampled, so totals (the
/// per-link byte sums, the phase attribution) are exact.
#[derive(Debug, Clone, Default)]
pub struct ResourceStats {
    /// Total time user attempts sat in CE batch queues.
    pub queue_wait_secs: f64,
    /// Total stage-in + stage-out transfer time (congestion included).
    pub transfer_secs: f64,
    /// Total pure compute time (execution minus transfers).
    pub compute_secs: f64,
    /// Bytes through each CE's network link (stage-in + stage-out, per
    /// started attempt — retries transfer again).
    pub link_bytes: BTreeMap<usize, u64>,
    /// Per-CE busy integrals and peaks.
    pub ces: BTreeMap<usize, CeStats>,
    /// Bytes staged into grid jobs per (consumer processor, input
    /// port) — the observed counterpart of `moteur plan`'s static
    /// per-edge transfer bounds.
    pub edge_bytes: BTreeMap<(String, String), u64>,
    /// Submission→completion durations per service (logical
    /// invocations that completed successfully).
    pub service_durations: BTreeMap<String, Vec<DurationSample>>,
    /// Completed / failed / cancelled invocation counts.
    pub completed: usize,
    pub failed: usize,
    pub cancelled: usize,
    /// `SloBreached` events observed.
    pub slo_breaches: usize,
    /// Latest virtual time seen on any event.
    pub t_end: f64,
}

impl ResourceStats {
    /// Sum of bytes over every link.
    pub fn total_link_bytes(&self) -> u64 {
        self.link_bytes.values().sum()
    }

    /// Busy fraction per CE over `[0, t_end]`, assuming the level held
    /// since the last observation.
    pub fn ce_utilization(&self) -> BTreeMap<usize, f64> {
        self.ces
            .iter()
            .map(|(&ce, s)| {
                let tail = (self.t_end - s.last_t).max(0.0) * s.last_busy as f64;
                let denom = s.slots as f64 * self.t_end;
                let u = if denom > 0.0 {
                    ((s.busy_slot_secs + tail) / denom).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                (ce, u)
            })
            .collect()
    }
}

/// Per-invocation lifecycle marks for phase attribution.
#[derive(Debug, Clone, Copy, Default)]
struct JobMarks {
    submitted: Option<f64>,
    enqueued: Option<f64>,
    started: Option<f64>,
    /// Transfer seconds of the current attempt (from the link event).
    attempt_transfer: f64,
}

/// Shared state behind a [`TimelineSink`] handle.
#[derive(Debug, Default)]
pub struct TimelineState {
    pub timeline: Timeline,
    pub stats: ResourceStats,
    marks: HashMap<u64, JobMarks>,
    services: HashMap<u64, String>,
}

/// An [`EventSink`] sampling every lifecycle event into a [`Timeline`]
/// and exact [`ResourceStats`].
#[derive(Debug)]
pub struct TimelineSink {
    state: Arc<Mutex<TimelineState>>,
}

impl TimelineSink {
    pub fn new() -> TimelineSink {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> TimelineSink {
        TimelineSink {
            state: Arc::new(Mutex::new(TimelineState {
                timeline: Timeline::with_capacity(capacity),
                ..TimelineState::default()
            })),
        }
    }

    /// Shared handle onto the accumulating state; lock it after
    /// `obs.flush()` to export.
    pub fn state(&self) -> Arc<Mutex<TimelineState>> {
        Arc::clone(&self.state)
    }

    /// Clone out the timeline and stats (post-run convenience).
    pub fn snapshot(&self) -> (Timeline, ResourceStats) {
        let state = self.state.lock().expect("timeline state lock poisoned");
        (state.timeline.clone(), state.stats.clone())
    }
}

impl Default for TimelineSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for TimelineSink {
    fn record(&mut self, event: &TraceEvent) {
        let mut state = self.state.lock().expect("timeline state lock poisoned");
        let state = &mut *state;
        let t = event.at().as_secs_f64();
        state.stats.t_end = state.stats.t_end.max(t);
        match event {
            TraceEvent::CeCapacity {
                ce,
                busy,
                queued_user,
                slots,
                ..
            } => {
                state
                    .timeline
                    .gauge(&format!("ce{ce}.queue_depth"), t, *queued_user as f64);
                state
                    .timeline
                    .gauge(&format!("ce{ce}.running"), t, *busy as f64);
                if *slots > 0 {
                    state.timeline.gauge(
                        &format!("ce{ce}.utilization"),
                        t,
                        *busy as f64 / *slots as f64,
                    );
                }
                let s = state.stats.ces.entry(*ce).or_default();
                s.busy_slot_secs += s.last_busy as f64 * (t - s.last_t).max(0.0);
                s.last_busy = *busy;
                s.last_t = t;
                s.slots = *slots;
                s.peak_queue_depth = s.peak_queue_depth.max(*queued_user);
            }
            TraceEvent::GridLinkTransfer {
                invocation,
                ce,
                bytes_in,
                bytes_out,
                stage_in_secs,
                stage_out_secs,
                ..
            } => {
                let bytes = bytes_in + bytes_out;
                let secs = stage_in_secs + stage_out_secs;
                state
                    .timeline
                    .counter(&format!("link.ce{ce}.bytes"), t, bytes as f64);
                let occupancy = if secs > 0.0 { bytes as f64 / secs } else { 0.0 };
                state
                    .timeline
                    .gauge(&format!("link.ce{ce}.bandwidth"), t, occupancy);
                *state.stats.link_bytes.entry(*ce).or_insert(0) += bytes;
                state.stats.transfer_secs += secs;
                let m = state.marks.entry(*invocation).or_default();
                m.attempt_transfer = secs;
            }
            TraceEvent::JobSubmitted {
                invocation,
                processor,
                ..
            } => {
                state.services.insert(*invocation, processor.clone());
                state.marks.entry(*invocation).or_default().submitted = Some(t);
                state.timeline.counter("enactor.jobs_submitted", t, 1.0);
            }
            TraceEvent::EdgeStaged {
                processor,
                port,
                bytes,
                ..
            } => {
                *state
                    .stats
                    .edge_bytes
                    .entry((processor.clone(), port.clone()))
                    .or_insert(0) += bytes;
            }
            TraceEvent::CacheHit {
                invocation,
                processor,
                ..
            } => {
                state.services.insert(*invocation, processor.clone());
                state.marks.entry(*invocation).or_default().submitted = Some(t);
                state.timeline.counter("enactor.cache_hits", t, 1.0);
            }
            TraceEvent::GridEnqueued { invocation, .. } => {
                state.marks.entry(*invocation).or_default().enqueued = Some(t);
            }
            TraceEvent::GridStarted { invocation, .. } => {
                let m = state.marks.entry(*invocation).or_default();
                if let Some(enq) = m.enqueued.take() {
                    state.stats.queue_wait_secs += (t - enq).max(0.0);
                }
                m.started = Some(t);
            }
            TraceEvent::GridFinished { invocation, .. } => {
                let m = state.marks.entry(*invocation).or_default();
                if let Some(start) = m.started.take() {
                    let exec = (t - start).max(0.0);
                    state.stats.compute_secs += (exec - m.attempt_transfer).max(0.0);
                    m.attempt_transfer = 0.0;
                }
            }
            TraceEvent::JobCompleted { invocation, .. } => {
                state.stats.completed += 1;
                state.timeline.counter("enactor.completed", t, 1.0);
                let submitted = state
                    .marks
                    .get(invocation)
                    .and_then(|m| m.submitted)
                    .unwrap_or(t);
                if let Some(service) = state.services.get(invocation) {
                    state
                        .stats
                        .service_durations
                        .entry(service.clone())
                        .or_default()
                        .push(DurationSample {
                            invocation: *invocation,
                            secs: (t - submitted).max(0.0),
                        });
                }
            }
            TraceEvent::JobFailed { .. } => {
                state.stats.failed += 1;
                state.timeline.counter("enactor.failed", t, 1.0);
            }
            TraceEvent::JobCancelled { .. } => {
                state.stats.cancelled += 1;
                state.timeline.counter("enactor.cancelled", t, 1.0);
            }
            TraceEvent::EnactorGauges {
                inflight,
                deferred,
                quarantined,
                cache_entries,
                cache_bytes,
                ..
            } => {
                state
                    .timeline
                    .gauge("enactor.inflight", t, *inflight as f64);
                state
                    .timeline
                    .gauge("enactor.deferred", t, *deferred as f64);
                state
                    .timeline
                    .gauge("enactor.quarantined", t, *quarantined as f64);
                state
                    .timeline
                    .gauge("store.entries", t, *cache_entries as f64);
                state.timeline.gauge("store.bytes", t, *cache_bytes as f64);
            }
            TraceEvent::PortSuspended {
                processor, depth, ..
            } => {
                state
                    .timeline
                    .gauge(&format!("port.depth.{processor}"), t, *depth as f64);
                state.timeline.counter("enactor.port_suspends", t, 1.0);
            }
            TraceEvent::PortResumed {
                processor, depth, ..
            } => {
                state
                    .timeline
                    .gauge(&format!("port.depth.{processor}"), t, *depth as f64);
                state.timeline.counter("enactor.port_resumes", t, 1.0);
            }
            TraceEvent::SloBreached { .. } => {
                state.stats.slo_breaches += 1;
                state.timeline.counter("enactor.slo_breaches", t, 1.0);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_total_is_exact_under_downsampling() {
        let mut tl = Timeline::with_capacity(8);
        for i in 0..1000u64 {
            tl.counter("c", i as f64, 3.0);
        }
        let s = tl.get("c").expect("series exists");
        assert!((s.total() - 3000.0).abs() < 1e-9, "total {}", s.total());
        assert!(
            s.samples().len() <= 9,
            "capacity respected: {}",
            s.samples().len()
        );
        assert_eq!(s.seen(), 1000);
    }

    #[test]
    fn downsampling_is_deterministic_and_keeps_endpoints() {
        let run = || {
            let mut tl = Timeline::with_capacity(16);
            for i in 0..500u64 {
                tl.gauge("g", i as f64, (i % 17) as f64);
            }
            tl.to_json()
        };
        assert_eq!(run(), run(), "same samples, same bytes");
        let mut tl = Timeline::with_capacity(16);
        for i in 0..500u64 {
            tl.gauge("g", i as f64, i as f64);
        }
        let samples = tl.get("g").expect("series").samples();
        assert_eq!(samples.first().expect("first").0, 0.0);
        assert_eq!(samples.last().expect("last").0, 499.0, "latest retained");
    }

    #[test]
    fn wraparound_halves_points_and_doubles_stride() {
        let mut tl = Timeline::with_capacity(8);
        for i in 0..8u64 {
            tl.gauge("g", i as f64, 1.0);
        }
        let stored = tl.get("g").expect("series").points.len();
        assert!(stored < 8, "buffer halved at capacity: {stored}");
        for i in 8..64u64 {
            tl.gauge("g", i as f64, 1.0);
        }
        assert!(
            tl.get("g").expect("series").points.len() < 8,
            "stays bounded"
        );
    }

    #[test]
    fn empty_timeline_exports_and_renders() {
        let tl = Timeline::new();
        let json = tl.to_json();
        assert!(json.contains(TIMELINE_SCHEMA), "{json}");
        assert!(json.contains("\"series\":[]"), "{json}");
        assert_eq!(tl.to_csv(), "series,kind,t,value\n");
        assert!(tl.render(60).contains("(empty)"));
        let back = Timeline::from_json(&json).expect("round-trip");
        assert!(back.is_empty());
    }

    #[test]
    fn json_round_trips() {
        let mut tl = Timeline::with_capacity(32);
        tl.gauge("ce0.queue_depth", 0.0, 2.0);
        tl.gauge("ce0.queue_depth", 5.5, 4.0);
        tl.counter("link.ce0.bytes", 1.0, 1000.0);
        tl.counter("link.ce0.bytes", 2.0, 500.0);
        let json = tl.to_json();
        let back = Timeline::from_json(&json).expect("parse");
        assert_eq!(back.to_json(), json, "round-trip is byte-stable");
        assert!((back.get("link.ce0.bytes").expect("series").total() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn renderers_cover_heatmap_and_sparklines() {
        let mut tl = Timeline::new();
        for ce in 0..3 {
            for i in 0..20 {
                tl.gauge(
                    &format!("ce{ce}.queue_depth"),
                    i as f64 * 10.0,
                    ((i + ce) % 7) as f64,
                );
            }
        }
        let heat = tl.render_heatmap("queue_depth", 40);
        assert!(heat.contains("queue_depth heatmap"), "{heat}");
        assert!(heat.contains("ce0"), "{heat}");
        assert!(heat.lines().count() >= 4, "{heat}");
        assert!(heat.is_ascii(), "ASCII only: {heat}");
        let spark = tl.render(40);
        assert!(spark.contains("ce2.queue_depth"), "{spark}");
        assert!(tl.render_heatmap("nothing", 40).contains("no `nothing`"));
    }

    #[test]
    fn sink_aggregates_phases_and_link_bytes() {
        use moteur_gridsim::SimTime;
        let t = SimTime::from_secs_f64;
        let mut sink = TimelineSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 1,
            processor: "svc".into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::GridEnqueued {
            at: t(1.0),
            invocation: 1,
            ce: 0,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(11.0),
            invocation: 1,
            ce: 0,
        });
        sink.record(&TraceEvent::GridLinkTransfer {
            at: t(11.0),
            invocation: 1,
            ce: 0,
            bytes_in: 700,
            bytes_out: 300,
            stage_in_secs: 3.0,
            stage_out_secs: 1.0,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(25.0),
            invocation: 1,
            ce: 0,
            success: true,
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(26.0),
            invocation: 1,
            processor: "svc".into(),
        });
        let (timeline, stats) = sink.snapshot();
        assert!((stats.queue_wait_secs - 10.0).abs() < 1e-9);
        assert!((stats.transfer_secs - 4.0).abs() < 1e-9);
        assert!((stats.compute_secs - 10.0).abs() < 1e-9);
        assert_eq!(stats.total_link_bytes(), 1000);
        assert_eq!(stats.completed, 1);
        let link = timeline.get("link.ce0.bytes").expect("link series");
        assert!((link.total() - 1000.0).abs() < 1e-9);
        let d = &stats.service_durations["svc"];
        assert_eq!(d.len(), 1);
        assert!((d[0].secs - 26.0).abs() < 1e-9);
    }

    #[test]
    fn ce_utilization_integrates_busy_levels() {
        use moteur_gridsim::SimTime;
        let t = SimTime::from_secs_f64;
        let mut sink = TimelineSink::new();
        let cap = |at: f64, busy: usize, queued_user: usize| TraceEvent::CeCapacity {
            at: t(at),
            ce: 0,
            busy,
            queued: queued_user,
            queued_user,
            slots: 2,
            up: true,
        };
        sink.record(&cap(0.0, 2, 3));
        sink.record(&cap(50.0, 1, 0));
        sink.record(&cap(100.0, 0, 0));
        let (_, stats) = sink.snapshot();
        // 2 slots busy for 50s + 1 slot for 50s = 150 slot-seconds of a
        // 200 slot-second budget.
        let u = stats.ce_utilization()[&0];
        assert!((u - 0.75).abs() < 1e-9, "utilization {u}");
        assert_eq!(stats.ces[&0].peak_queue_depth, 3);
    }
}
