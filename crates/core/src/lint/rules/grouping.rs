//! Job-grouping legality rules (M030–M031, paper §3.6).
//!
//! Mirrors the conditions of [`crate::grouping`]'s transform, but
//! instead of merging it *explains*: M030 points out sequential pairs
//! the `jg` optimisation would fuse (saving one grid submission per
//! invocation), M031 points out pairs that look sequential yet cannot
//! legally be fused, with the §3.6 condition that blocks them.

use crate::graph::{IterationStrategy, ProcId, ProcessorKind, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use crate::service::ServiceBinding;
use std::collections::HashMap;

/// Run the §3.6 job-grouping rules (M030–M031).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    let in_cycle = cycle_members(wf);
    for (i, p) in wf.processors.iter().enumerate() {
        let p_id = ProcId(i);
        if p.kind != ProcessorKind::Service {
            continue;
        }
        // Only pairs where *every* output of P flows to one service Q
        // are even candidates; branching producers are ordinary
        // workflow structure, not a missed optimisation.
        let succs = wf.data_succs(p_id);
        let [q_id] = succs.as_slice() else { continue };
        let q_id = *q_id;
        if q_id == p_id || wf.processor(q_id).kind != ProcessorKind::Service {
            continue;
        }
        match blocking_reason(wf, p_id, q_id, &in_cycle) {
            None => {
                let q = wf.processor(q_id);
                report.push(
                    Diagnostic::note(
                        "M030",
                        format!(
                            "`{}` and `{}` form a sequential chain: job grouping (§3.6) \
                             would run them as one grid job",
                            p.name, q.name
                        ),
                    )
                    .primary(wf.spans.processor(p_id), "produces only for the next stage")
                    .secondary(wf.spans.processor(q_id), "sole consumer")
                    .with_help("enact with the `jg` (or `sp+dp+jg`) configuration to fuse them"),
                );
            }
            Some(reason) => {
                let q = wf.processor(q_id);
                report.push(
                    Diagnostic::note(
                        "M031",
                        format!(
                            "`{}` feeds only `{}` but the pair cannot be grouped: {reason}",
                            p.name, q.name
                        ),
                    )
                    .primary(wf.spans.processor(p_id), "produces only for the next stage")
                    .secondary(wf.spans.processor(q_id), "sole consumer"),
                );
            }
        }
    }
}

/// First §3.6 condition that makes (P, Q) ungroupable, or `None` when
/// the pair is groupable. Kept in the same order as
/// `grouping::is_groupable_service` so the two stay in agreement.
fn blocking_reason(wf: &Workflow, p_id: ProcId, q_id: ProcId, in_cycle: &[bool]) -> Option<String> {
    for id in [p_id, q_id] {
        let p = wf.processor(id);
        if p.synchronization {
            return Some(format!(
                "`{}` is a synchronization barrier and must see the whole input stream",
                p.name
            ));
        }
        if in_cycle[id.0] {
            return Some(format!(
                "`{}` is part of a cycle, whose iteration count is only known at run time",
                p.name
            ));
        }
        if p.iteration != IterationStrategy::Dot {
            return Some(format!(
                "`{}` uses the cross-product iteration strategy; fusing it would change \
                 the invocation count",
                p.name
            ));
        }
        if !matches!(
            p.binding,
            Some(ServiceBinding::Descriptor { .. }) | Some(ServiceBinding::Grouped(_))
        ) {
            return Some(format!(
                "`{}` is not bound to an executable descriptor, so there is no command \
                 line to chain",
                p.name
            ));
        }
        if wf.control.iter().any(|(a, b)| *a == id || *b == id) {
            return Some(format!(
                "`{}` is subject to a coordination constraint, which grouping would bypass",
                p.name
            ));
        }
    }
    // Each Q input port must be fed either by exactly one P output or
    // only by non-P producers — otherwise the fused job cannot tell
    // which tuple element feeds which slot.
    let q = wf.processor(q_id);
    for (port, pname) in q.inputs.iter().enumerate() {
        let feeders: Vec<ProcId> = wf
            .links
            .iter()
            .filter(|l| l.to.proc == q_id && l.to.port == port)
            .map(|l| l.from.proc)
            .collect();
        let from_p = feeders.iter().filter(|f| **f == p_id).count();
        if from_p > 0 && (from_p != feeders.len() || from_p > 1) {
            return Some(format!(
                "input port `{pname}` of `{}` mixes data from `{}` with other producers",
                q.name,
                wf.processor(p_id).name
            ));
        }
    }
    None
}

/// Which processors sit on a data-link cycle (same membership test the
/// grouping transform uses).
fn cycle_members(wf: &Workflow) -> Vec<bool> {
    let scc_ids = wf.scc_ids();
    let mut sizes: HashMap<usize, usize> = HashMap::new();
    for &id in &scc_ids {
        *sizes.entry(id).or_insert(0) += 1;
    }
    (0..wf.processors.len())
        .map(|v| {
            sizes[&scc_ids[v]] > 1
                || wf
                    .links
                    .iter()
                    .any(|l| l.from.proc.0 == v && l.to.proc.0 == v)
        })
        .collect()
}
