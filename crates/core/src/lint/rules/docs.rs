//! The rule documentation registry (`moteur lint --explain M0xx`).
//!
//! One entry per rule code the suite can emit, table-driven so CI
//! failures are self-describing: the renderer prints the code, the
//! registry explains what it means and how to fix it. A sync test
//! keeps this table and [`crate::lint::render::KNOWN_CODES`] identical.

use crate::lint::diag::Severity;

/// Documentation of one rule code.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Stable rule code (`M0xx`).
    pub code: &'static str,
    /// Severity the rule emits at (the *strongest* one, for rules that
    /// emit at several).
    pub severity: Severity,
    /// One-line summary, matching the README rule table.
    pub summary: &'static str,
    /// Longer explanation: what the finding means and what to do.
    pub doc: &'static str,
}

/// Every documented rule, in code order.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        code: "M000",
        severity: Severity::Error,
        summary: "document is not parseable scufl",
        doc: "The XML does not parse, or the root element is not <scufl>. Nothing \
              beyond this point can be analyzed; fix well-formedness first.",
    },
    RuleDoc {
        code: "M001",
        severity: Severity::Error,
        summary: "dangling link or coordination reference",
        doc: "A <link> or <coordination> names a processor or port that does not \
              exist. The edge is dropped, so the workflow that enacts is not the \
              workflow you wrote.",
    },
    RuleDoc {
        code: "M002",
        severity: Severity::Error,
        summary: "processor unreachable from any source",
        doc: "No chain of data links connects any <source> to this processor: it \
              never receives a token and never fires. Connect it or remove it.",
    },
    RuleDoc {
        code: "M003",
        severity: Severity::Warning,
        summary: "processor cannot reach any sink",
        doc: "The processor fires, but nothing it produces can ever arrive at a \
              <sink>: its results are computed and silently discarded.",
    },
    RuleDoc {
        code: "M004",
        severity: Severity::Error,
        summary: "closed data-link cycle",
        doc: "A cycle no link ever leaves cannot deliver a result — tokens \
              circulate forever. Paper Fig. 2 cycles are legal only with an exit \
              link for conditional routing.",
    },
    RuleDoc {
        code: "M005",
        severity: Severity::Warning,
        summary: "processor linked to itself",
        doc: "A self-loop makes the processor its own predecessor. Only meaningful \
              with conditional routing; usually a wiring mistake.",
    },
    RuleDoc {
        code: "M006",
        severity: Severity::Note,
        summary: "cycle bounded at run time",
        doc: "A data-link cycle with an exit link: the iteration count is decided \
              at run time by conditional output routing (optimization loops). \
              Static cardinalities downstream become unbounded intervals.",
    },
    RuleDoc {
        code: "M007",
        severity: Severity::Error,
        summary: "duplicate processor name",
        doc: "Two processors share a name, so links and input bindings resolve \
              ambiguously. Rename one.",
    },
    RuleDoc {
        code: "M008",
        severity: Severity::Error,
        summary: "service without a binding",
        doc: "A service processor with no executable descriptor (or local binding) \
              can never be invoked.",
    },
    RuleDoc {
        code: "M010",
        severity: Severity::Error,
        summary: "input port not connected",
        doc: "An input port with no inbound link: the iteration strategy can never \
              assemble a complete input tuple, so the processor silently never \
              fires. Add a <link> or fix the slot with a <param>.",
    },
    RuleDoc {
        code: "M011",
        severity: Severity::Warning,
        summary: "input port fed by several links",
        doc: "Streams merging on one port interleave in completion order, so \
              iteration pairing is non-deterministic. Barriers are exempt (they \
              consume whole streams).",
    },
    RuleDoc {
        code: "M012",
        severity: Severity::Error,
        summary: "<param> names an unknown slot",
        doc: "The fixed parameter names a slot the descriptor does not declare: it \
              fixes nothing and the real slot stays dangling.",
    },
    RuleDoc {
        code: "M013",
        severity: Severity::Warning,
        summary: "<outputsize> names an unknown slot",
        doc: "The size declaration names a slot the descriptor does not declare, \
              so the transfer model never sees it.",
    },
    RuleDoc {
        code: "M014",
        severity: Severity::Note,
        summary: "output port never consumed",
        doc: "The port's files are produced, transferred and registered for \
              nobody. Legal, but see M083 when the stream is heavy.",
    },
    RuleDoc {
        code: "M020",
        severity: Severity::Warning,
        summary: "dot product over unequal cardinalities",
        doc: "Index-wise pairing truncates to the shortest stream, silently \
              dropping the tail of the longer one. Use iteration=\"cross\" to \
              combine all items, or sync=\"true\" to consume whole streams.",
    },
    RuleDoc {
        code: "M021",
        severity: Severity::Warning,
        summary: "cross product multiplies stream sizes",
        doc: "The invocation count grows as a power (degree ≥ 2) of the input set \
              size. If the streams are index-correlated, iteration=\"dot\" avoids \
              the blowup.",
    },
    RuleDoc {
        code: "M030",
        severity: Severity::Note,
        summary: "job grouping opportunity",
        doc: "Two services in sequence satisfy the §3.6 grouping criterion: one \
              grid job could run both, halving submission overhead.",
    },
    RuleDoc {
        code: "M031",
        severity: Severity::Warning,
        summary: "grouping blocked by port mismatch",
        doc: "A would-be §3.6 group is blocked by heterogeneous ports or an \
              intermediate consumer; restructure to enable grouping.",
    },
    RuleDoc {
        code: "M040",
        severity: Severity::Error,
        summary: "coordination cycle",
        doc: "Coordination constraints form a cycle: every member waits for \
              another, so none ever fires.",
    },
    RuleDoc {
        code: "M041",
        severity: Severity::Warning,
        summary: "coordination contradicts data flow",
        doc: "The constraint orders a consumer before its own producer (or \
              redundantly restates a data edge); enactment may deadlock.",
    },
    RuleDoc {
        code: "M042",
        severity: Severity::Note,
        summary: "redundant coordination constraint",
        doc: "The data-link topology already enforces this ordering; the \
              constraint adds nothing.",
    },
    RuleDoc {
        code: "M050",
        severity: Severity::Warning,
        summary: "suspicious executable descriptor",
        doc: "The embedded descriptor parses but will misbehave when the wrapper \
              synthesizes a command line (duplicate options, optionless file \
              slots, zero-byte item sizes, no outputs).",
    },
    RuleDoc {
        code: "M051",
        severity: Severity::Error,
        summary: "ports and descriptor slots disagree",
        doc: "A processor port matches no descriptor slot (or a file slot is \
              never fed by a port or <param>): the wrapper cannot plan the job.",
    },
    RuleDoc {
        code: "M060",
        severity: Severity::Error,
        summary: "unknown scufl element",
        doc: "The document contains an element the dialect does not define. \
              Expected <source>, <sink>, <processor>, <link> or <coordination>.",
    },
    RuleDoc {
        code: "M061",
        severity: Severity::Error,
        summary: "missing required attribute",
        doc: "A scufl element lacks an attribute the parser needs (e.g. a \
              <link> without from=/to=). The construct is skipped.",
    },
    RuleDoc {
        code: "M062",
        severity: Severity::Error,
        summary: "malformed numeric attribute",
        doc: "A numeric attribute (compute=, bytes=, <outputsize bytes=>) does \
              not parse as a number.",
    },
    RuleDoc {
        code: "M063",
        severity: Severity::Error,
        summary: "malformed endpoint",
        doc: "A link endpoint is not of the form `processor:port`.",
    },
    RuleDoc {
        code: "M064",
        severity: Severity::Error,
        summary: "malformed descriptor or cost model",
        doc: "The embedded <executable> or <cost> element does not parse; the \
              processor is left unbound (see M008).",
    },
    RuleDoc {
        code: "M070",
        severity: Severity::Warning,
        summary: "non-deterministic service is never memoized",
        doc: "The descriptor declares nondeterministic=\"true\": memoizing it \
              would replay stale outputs, so the data manager re-executes it on \
              every warm run. See M085 for the downstream consequence.",
    },
    RuleDoc {
        code: "M080",
        severity: Severity::Warning,
        summary: "cardinality explosion beyond the cap",
        doc: "The interval cardinality analysis proves the service can fire more \
              times than the explosion cap (10⁶ by default): the campaign grows \
              combinatorially. Replace cross-products on correlated streams with \
              iteration=\"dot\", or reduce upstream fan-out.",
    },
    RuleDoc {
        code: "M081",
        severity: Severity::Note,
        summary: "transfer-dominated edge",
        doc: "One edge carries at least half of all statically-bounded bytes (and \
              at least 1 MiB): the enactor's routing load concentrates there. \
              `moteur plan` reports a site partition that internalizes it.",
    },
    RuleDoc {
        code: "M082",
        severity: Severity::Warning,
        summary: "service can never fire",
        doc: "The interval analysis proves the invocation count is exactly zero \
              under the declared inputs — an upstream port receives no items, so \
              this service (unlike M002's unreachable case, it may be fully \
              wired) starves transitively.",
    },
    RuleDoc {
        code: "M083",
        severity: Severity::Warning,
        summary: "heavy output port never consumed",
        doc: "An unconsumed output port (M014) whose stream is statically bounded \
              at 1 MiB or more per campaign: the bytes are produced, transferred \
              and registered for nobody. Link the port or drop the output.",
    },
    RuleDoc {
        code: "M084",
        severity: Severity::Note,
        summary: "barrier serializes a pipelinable chain",
        doc: "A synchronization barrier sits between upstream and downstream \
              services with a multi-item stream: service parallelism cannot \
              stream through it, so the downstream chain waits for the entire \
              upstream campaign. Drop sync=\"true\" if the whole stream is not \
              actually needed at once.",
    },
    RuleDoc {
        code: "M085",
        severity: Severity::Note,
        summary: "memoization defeated downstream of nondeterminism",
        doc: "A deterministic service whose inputs derive from a \
              nondeterministic one (M070): its cache keys never repeat across \
              runs, so invocation memoization and warm restarts silently stop \
              helping from that point on.",
    },
];

/// Look up one rule's documentation.
pub fn explain(code: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.code == code)
}

/// Render one rule's documentation as the CLI prints it.
pub fn render_explain(doc: &RuleDoc) -> String {
    format!(
        "{} ({}): {}\n\n{}\n",
        doc.code,
        doc.severity.name(),
        doc.summary,
        doc.doc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::render::KNOWN_CODES;

    #[test]
    fn registry_and_known_codes_stay_in_sync() {
        let documented: Vec<&str> = RULE_DOCS.iter().map(|d| d.code).collect();
        assert_eq!(
            documented, KNOWN_CODES,
            "KNOWN_CODES and RULE_DOCS must list the same codes in the same order"
        );
    }

    #[test]
    fn explain_finds_rules_by_code() {
        let doc = explain("M080").unwrap();
        assert_eq!(doc.severity, Severity::Warning);
        let text = render_explain(doc);
        assert!(text.starts_with("M080 (warning): cardinality explosion"));
        assert!(explain("M999").is_none());
    }
}
