//! Port-typing rules (M010–M014): wiring completeness and
//! `<param>`/`<outputsize>` slot declarations.

use crate::graph::{ProcId, ProcessorKind, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use crate::service::ServiceBinding;

/// Run the port wiring and slot declaration rules (M010–M014).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    unconnected_inputs(wf, report);
    multiply_fed_ports(wf, report);
    slot_declarations(wf, report);
    unconsumed_outputs(wf, report);
}

/// M010: an input port of a non-source processor with no inbound link.
/// The iteration strategy can never assemble a complete input tuple, so
/// the processor silently never fires.
fn unconnected_inputs(wf: &Workflow, report: &mut LintReport) {
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind == ProcessorKind::Source {
            continue;
        }
        for (port, pname) in p.inputs.iter().enumerate() {
            let fed = wf
                .links
                .iter()
                .any(|l| l.to.proc.0 == i && l.to.port == port);
            if !fed {
                report.push(
                    Diagnostic::error(
                        "M010",
                        format!("input port `{pname}` of `{}` is not connected", p.name),
                    )
                    .primary(wf.spans.processor(ProcId(i)), "declared here")
                    .with_help(format!(
                        "add a <link to=\"{}:{pname}\"/>, or fix the slot with a <param>",
                        p.name
                    )),
                );
            }
        }
    }
}

/// M011: two or more links feed the same input port of a non-sync
/// processor. The streams interleave in completion order, so pairing
/// under the iteration strategy becomes non-deterministic.
/// Synchronization barriers are exempt: they consume entire streams.
fn multiply_fed_ports(wf: &Workflow, report: &mut LintReport) {
    for (i, p) in wf.processors.iter().enumerate() {
        if p.synchronization {
            continue;
        }
        for (port, pname) in p.inputs.iter().enumerate() {
            let feeders: Vec<usize> = wf
                .links
                .iter()
                .enumerate()
                .filter(|(_, l)| l.to.proc.0 == i && l.to.port == port)
                .map(|(li, _)| li)
                .collect();
            if feeders.len() > 1 {
                let mut d = Diagnostic::warning(
                    "M011",
                    format!(
                        "input port `{pname}` of `{}` is fed by {} links: streams \
                         interleave non-deterministically",
                        p.name,
                        feeders.len()
                    ),
                )
                .primary(wf.spans.link(feeders[0]), "first feeder")
                .with_help(
                    "feed each port from one producer, or mark the processor sync=\"true\" \
                     to consume whole streams",
                );
                for &li in &feeders[1..] {
                    d = d.secondary(wf.spans.link(li), "also feeds the same port");
                }
                report.push(d);
            }
        }
    }
}

/// M012 (error) / M013 (warning): `<param>` and `<outputsize>`
/// declarations naming slots the descriptor does not declare. A bad
/// `<param slot>` silently fixes nothing, leaving the real slot
/// dangling; a bad `<outputsize>` silently sizes nothing.
fn slot_declarations(wf: &Workflow, report: &mut LintReport) {
    for (i, p) in wf.processors.iter().enumerate() {
        let Some(ServiceBinding::Descriptor {
            descriptor,
            profile,
        }) = &p.binding
        else {
            continue;
        };
        let id = ProcId(i);
        for (slot, _) in &profile.fixed_params {
            if descriptor.input(slot).is_none() {
                let available: Vec<&str> =
                    descriptor.inputs.iter().map(|s| s.name.as_str()).collect();
                report.push(
                    Diagnostic::error(
                        "M012",
                        format!("<param> on `{}` fixes unknown slot `{slot}`", p.name),
                    )
                    .primary(wf.spans.param(id, slot), "no such input slot")
                    .secondary(wf.spans.processor(id), "descriptor declared here")
                    .with_help(format!("declared input slots: {}", available.join(", "))),
                );
            }
        }
        for (slot, _) in &profile.output_bytes {
            if descriptor.output(slot).is_none() {
                let available: Vec<&str> =
                    descriptor.outputs.iter().map(|s| s.name.as_str()).collect();
                report.push(
                    Diagnostic::warning(
                        "M013",
                        format!("<outputsize> on `{}` sizes unknown slot `{slot}`", p.name),
                    )
                    .primary(wf.spans.outputsize(id, slot), "no such output slot")
                    .with_help(format!("declared output slots: {}", available.join(", "))),
                );
            }
        }
    }
}

/// M014: a service output port nothing consumes. Legal (the job still
/// runs) but the produced file is transferred and registered for
/// nobody.
fn unconsumed_outputs(wf: &Workflow, report: &mut LintReport) {
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind != ProcessorKind::Service {
            continue;
        }
        for (port, pname) in p.outputs.iter().enumerate() {
            let consumed = wf
                .links
                .iter()
                .any(|l| l.from.proc.0 == i && l.from.port == port);
            if !consumed {
                report.push(
                    Diagnostic::note(
                        "M014",
                        format!("output port `{pname}` of `{}` is never consumed", p.name),
                    )
                    .primary(wf.spans.processor(ProcId(i)), "declared here"),
                );
            }
        }
    }
}
