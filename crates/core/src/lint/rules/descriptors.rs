//! Descriptor/catalog cross-validation (M050–M051, M070).
//!
//! M050 surfaces per-descriptor findings from
//! [`moteur_wrapper::lint_descriptor`] on the processor that embeds the
//! descriptor. M051 cross-checks the processor's *ports* against the
//! descriptor's *slots*: a port the wrapper cannot map to a slot (or a
//! file slot no port and no `<param>` ever feeds) produces a job the
//! wrapper cannot plan. M070 flags services declared non-deterministic:
//! they are safe to run but unsafe to memoize, so the data manager
//! skips them and warm restarts re-execute them on the grid.

use crate::graph::{ProcId, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use crate::service::ServiceBinding;
use moteur_wrapper::lint_descriptor;

/// Run the descriptor cross-validation rules (M050–M051, M070).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    for (i, p) in wf.processors.iter().enumerate() {
        let Some(ServiceBinding::Descriptor {
            descriptor,
            profile,
        }) = &p.binding
        else {
            continue;
        };
        let id = ProcId(i);

        // M050: descriptor-level findings, anchored on the processor.
        for finding in lint_descriptor(descriptor) {
            report.push(
                Diagnostic::warning(
                    "M050",
                    format!("descriptor of `{}`: {}", p.name, finding.message),
                )
                .primary(wf.spans.processor(id), "descriptor embedded here"),
            );
        }

        // M070: memoizing a non-deterministic executable would replay
        // stale outputs that a fresh execution would not reproduce.
        // The data manager refuses such services at run time; warn so
        // the user knows warm restarts will re-execute them.
        if descriptor.nondeterministic {
            report.push(
                Diagnostic::warning(
                    "M070",
                    format!(
                        "`{}` is bound to non-deterministic executable `{}`: its \
                         invocations are never memoized by the data manager",
                        p.name, descriptor.executable.name
                    ),
                )
                .primary(wf.spans.processor(id), "declared nondeterministic=\"true\"")
                .with_help(
                    "drop the attribute if outputs are a pure function of inputs; \
                     otherwise expect this service to re-execute on warm runs",
                ),
            );
        }

        // M051, ports → slots: every processor port must name a slot or
        // the wrapper cannot place the token on the command line.
        for port in &p.inputs {
            if descriptor.input(port).is_none() {
                report.push(
                    Diagnostic::error(
                        "M051",
                        format!(
                            "input port `{port}` of `{}` matches no input slot of its \
                             descriptor",
                            p.name
                        ),
                    )
                    .primary(wf.spans.processor(id), "port and descriptor disagree")
                    .with_help(format!(
                        "declared input slots: {}",
                        slot_names(descriptor.inputs.iter().map(|s| s.name.as_str()))
                    )),
                );
            }
        }
        for port in &p.outputs {
            if descriptor.output(port).is_none() {
                report.push(
                    Diagnostic::error(
                        "M051",
                        format!(
                            "output port `{port}` of `{}` matches no output slot of its \
                             descriptor",
                            p.name
                        ),
                    )
                    .primary(wf.spans.processor(id), "port and descriptor disagree")
                    .with_help(format!(
                        "declared output slots: {}",
                        slot_names(descriptor.outputs.iter().map(|s| s.name.as_str()))
                    )),
                );
            }
        }

        // M051, slots → ports: a *file* slot that is neither a port nor
        // fixed by a <param> never receives a value, so every job plan
        // is missing an input file. Value parameters are exempt — they
        // commonly default inside the executable.
        for slot in descriptor.file_inputs() {
            let has_port = p.inputs.contains(&slot.name);
            let fixed = profile.fixed_params.iter().any(|(s, _)| *s == slot.name);
            if !has_port && !fixed {
                report.push(
                    Diagnostic::error(
                        "M051",
                        format!(
                            "file slot `{}` of `{}` is neither an input port nor fixed \
                             by a <param>",
                            slot.name, p.name
                        ),
                    )
                    .primary(wf.spans.processor(id), "slot never receives a file")
                    .with_help(format!(
                        "expose `{}` as an input port or fix it with \
                         <param slot=\"{}\" value=\"...\"/>",
                        slot.name, slot.name
                    )),
                );
            }
        }
    }
}

fn slot_names<'a>(names: impl Iterator<Item = &'a str>) -> String {
    let list: Vec<&str> = names.collect();
    if list.is_empty() {
        "(none)".to_string()
    } else {
        list.join(", ")
    }
}
