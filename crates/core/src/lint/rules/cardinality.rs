//! Iteration-strategy cardinality analysis (M020–M021).
//!
//! Statically propagates *symbolic stream cardinalities* from sources
//! through the graph. Each source contributes one symbol; a stream's
//! cardinality is a monomial over those symbols (e.g. crossing two
//! independent sources of sizes `n` and `m` yields an `n·m` stream).
//! With every source sized `n_D`, a monomial of total degree `d` is an
//! `n_D^d` stream — which is exactly the predicted invocation count the
//! `--predict` analysis needs.

use crate::graph::{IterationStrategy, ProcId, ProcessorKind, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use std::collections::BTreeMap;

/// Symbolic cardinality of a token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Card {
    /// Exactly one item, regardless of input sizes (a synchronization
    /// barrier's output).
    One,
    /// A monomial over source names: `{referenceImage: 1}` is an
    /// `n`-item stream, `{a: 1, b: 1}` an `n·m` stream.
    Mono(BTreeMap<String, u32>),
    /// Not statically determinable (cycles, merged streams).
    Unknown,
}

impl Card {
    /// Total degree: 0 for [`Card::One`], the exponent sum for a
    /// monomial, `None` when unknown.
    pub fn degree(&self) -> Option<u32> {
        match self {
            Card::One => Some(0),
            Card::Mono(m) => Some(m.values().sum()),
            Card::Unknown => None,
        }
    }

    /// Stream length with every source sized `n_data`. `None` when
    /// unknown.
    pub fn count(&self, n_data: usize) -> Option<u64> {
        self.degree().map(|d| (n_data as u64).saturating_pow(d))
    }

    /// Render the monomial symbolically: `1`, `n(src)`, `n(a)·n(b)`,
    /// `n(x)^2` or `?`.
    pub fn render(&self) -> String {
        match self {
            Card::One => "1".to_string(),
            Card::Mono(m) => {
                let parts: Vec<String> = m
                    .iter()
                    .map(|(s, e)| {
                        if *e == 1 {
                            format!("n({s})")
                        } else {
                            format!("n({s})^{e}")
                        }
                    })
                    .collect();
                if parts.is_empty() {
                    "1".to_string()
                } else {
                    parts.join("·")
                }
            }
            Card::Unknown => "?".to_string(),
        }
    }
}

/// Per-processor cardinality of the *output* stream each processor
/// produces (one entry per processor, indexed by [`ProcId`]).
pub fn output_cardinalities(wf: &Workflow) -> Vec<Card> {
    let n = wf.processors.len();
    let scc_ids = wf.scc_ids();
    let mut scc_size: BTreeMap<usize, usize> = BTreeMap::new();
    for &c in &scc_ids {
        *scc_size.entry(c).or_insert(0) += 1;
    }
    let in_cycle = |v: usize| {
        scc_size[&scc_ids[v]] > 1
            || wf
                .links
                .iter()
                .any(|l| l.from.proc.0 == v && l.to.proc.0 == v)
    };

    let mut cards: Vec<Option<Card>> = vec![None; n];
    // Fixpoint iteration (the graph is tiny; cycles resolve to Unknown
    // immediately so this converges in ≤ n passes).
    for _ in 0..=n {
        let mut changed = false;
        for v in 0..n {
            if cards[v].is_some() {
                continue;
            }
            let p = &wf.processors[v];
            let card = if in_cycle(v) {
                Some(Card::Unknown)
            } else if p.kind == ProcessorKind::Source {
                Some(Card::Mono(BTreeMap::from([(p.name.clone(), 1)])))
            } else {
                input_cards(wf, ProcId(v), &cards).map(|ins| combine(p, &ins))
            };
            if card.is_some() {
                cards[v] = card;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cards
        .into_iter()
        .map(|c| c.unwrap_or(Card::Unknown))
        .collect()
}

/// Cardinality of each *input port* stream of `proc`, or `None` while a
/// predecessor is still unresolved. A port fed by several links is a
/// non-deterministic merge → [`Card::Unknown`].
pub fn input_cards(wf: &Workflow, proc: ProcId, cards: &[Option<Card>]) -> Option<Vec<Card>> {
    let p = wf.processor(proc);
    let mut out = Vec::with_capacity(p.inputs.len());
    for port in 0..p.inputs.len() {
        let feeders: Vec<ProcId> = wf
            .links
            .iter()
            .filter(|l| l.to.proc == proc && l.to.port == port)
            .map(|l| l.from.proc)
            .collect();
        let card = match feeders.as_slice() {
            [] => Card::Unknown, // unconnected: M010's concern, not ours
            [f] => cards.get(f.0).and_then(Clone::clone)?,
            _ => Card::Unknown,
        };
        out.push(card);
    }
    Some(out)
}

/// Combine input-stream cardinalities under the processor's iteration
/// strategy into its output-stream cardinality.
fn combine(p: &crate::graph::Processor, inputs: &[Card]) -> Card {
    if p.synchronization {
        // A barrier consumes its entire input streams and fires once.
        return Card::One;
    }
    if inputs.is_empty() {
        // A no-input processor never assembles a tuple (sources are
        // handled by the caller).
        return Card::One;
    }
    match p.iteration {
        IterationStrategy::Dot => {
            if inputs.contains(&Card::Unknown) {
                return Card::Unknown;
            }
            // Dot pairs items index-wise: the result is as long as the
            // shortest stream. A One operand truncates everything to 1.
            let monos: Vec<&BTreeMap<String, u32>> = inputs
                .iter()
                .filter_map(|c| match c {
                    Card::Mono(m) => Some(m),
                    _ => None,
                })
                .collect();
            if monos.is_empty() {
                return Card::One;
            }
            if inputs.contains(&Card::One) {
                return Card::One;
            }
            monos
                .iter()
                .min_by_key(|m| m.values().sum::<u32>())
                .map_or(Card::Unknown, |m| Card::Mono((*m).clone()))
        }
        IterationStrategy::Cross => {
            // Cross is the product of all stream lengths: exponent maps
            // add (One contributes a factor of 1).
            let mut acc: BTreeMap<String, u32> = BTreeMap::new();
            for c in inputs {
                match c {
                    Card::Unknown => return Card::Unknown,
                    Card::One => {}
                    Card::Mono(m) => {
                        for (s, e) in m {
                            *acc.entry(s.clone()).or_insert(0) += e;
                        }
                    }
                }
            }
            if acc.is_empty() {
                Card::One
            } else {
                Card::Mono(acc)
            }
        }
    }
}

/// Run the iteration-strategy cardinality rules (M020–M021).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    let cards = output_cardinalities(wf);
    let resolved: Vec<Option<Card>> = cards.iter().cloned().map(Some).collect();
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind != ProcessorKind::Service || p.synchronization {
            continue;
        }
        let Some(inputs) = input_cards(wf, ProcId(i), &resolved) else {
            continue;
        };
        if p.iteration == IterationStrategy::Dot {
            dot_mismatch(wf, ProcId(i), &inputs, report);
        }
        if p.iteration == IterationStrategy::Cross {
            cross_blowup(wf, ProcId(i), &cards[i], report);
        }
    }
}

/// M020: a dot-product processor whose input streams have different
/// total degrees. Index-wise pairing runs out of items on the shorter
/// stream, silently dropping the tail of the longer one.
fn dot_mismatch(wf: &Workflow, id: ProcId, inputs: &[Card], report: &mut LintReport) {
    let p = wf.processor(id);
    let degrees: Vec<(usize, u32)> = inputs
        .iter()
        .enumerate()
        .filter_map(|(port, c)| match c {
            Card::Mono(_) | Card::One => c.degree().map(|d| (port, d)),
            Card::Unknown => None,
        })
        .collect();
    // Only monomial streams participate: a constant One against an
    // n-stream is the degree-0 vs degree-1 case and *is* reported.
    if degrees.len() < 2 {
        return;
    }
    let (min_port, min_d) = *degrees.iter().min_by_key(|(_, d)| *d).unwrap();
    let (max_port, max_d) = *degrees.iter().max_by_key(|(_, d)| *d).unwrap();
    if min_d == max_d {
        return;
    }
    report.push(
        Diagnostic::warning(
            "M020",
            format!(
                "dot-product `{}` pairs streams of different cardinality: port `{}` \
                 carries {} items but port `{}` carries {}",
                p.name,
                p.inputs[max_port],
                inputs[max_port].render(),
                p.inputs[min_port],
                inputs[min_port].render(),
            ),
        )
        .primary(
            wf.spans.processor(id),
            "dot pairing truncates to the shortest stream",
        )
        .with_help(
            "use iteration=\"cross\" to combine all items, or sync=\"true\" to consume \
             whole streams",
        ),
    );
}

/// M021: a cross-product processor whose output stream has total degree
/// ≥ 2 — the invocation count grows as a power of the input size.
fn cross_blowup(wf: &Workflow, id: ProcId, out: &Card, report: &mut LintReport) {
    let p = wf.processor(id);
    let Some(d) = out.degree() else { return };
    if d < 2 {
        return;
    }
    let example_n = 12usize; // the paper's smallest campaign
    let example = out.count(example_n).unwrap_or(0);
    report.push(
        Diagnostic::warning(
            "M021",
            format!(
                "cross-product `{}` multiplies its input streams: {} invocations \
                 (degree {d}; e.g. {example} jobs at {example_n} items per source)",
                p.name,
                out.render(),
            ),
        )
        .primary(
            wf.spans.processor(id),
            format!("invocation count is a degree-{d} polynomial"),
        )
        .with_help("if the streams are index-correlated, iteration=\"dot\" avoids the blowup"),
    );
}
