//! Graph-structure rules (M001–M008): link sanity, reachability,
//! cycles and naming.

use crate::graph::{ProcId, ProcessorKind, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use std::collections::HashMap;

/// Run the graph structure and reachability rules (M001–M008).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    dangling_links(wf, report);
    duplicate_names(wf, report);
    missing_bindings(wf, report);
    self_links(wf, report);
    cycles(wf, report);
    reachability(wf, report);
}

/// M001: a link references a processor or port that does not exist.
///
/// The Scufl parser emits M001 for unresolved *names*; this covers the
/// programmatic case of out-of-range indices, which would panic the
/// enactor's token router.
fn dangling_links(wf: &Workflow, report: &mut LintReport) {
    for (i, l) in wf.links.iter().enumerate() {
        let span = wf.spans.link(i);
        let bad = match (
            wf.processors.get(l.from.proc.0),
            wf.processors.get(l.to.proc.0),
        ) {
            (None, _) | (_, None) => Some("references a processor that does not exist".to_string()),
            (Some(fp), Some(tp)) => {
                if l.from.port >= fp.outputs.len() {
                    Some(format!("`{}` has no output port #{}", fp.name, l.from.port))
                } else if l.to.port >= tp.inputs.len() {
                    Some(format!("`{}` has no input port #{}", tp.name, l.to.port))
                } else {
                    None
                }
            }
        };
        if let Some(why) = bad {
            report.push(
                Diagnostic::error("M001", format!("dangling link: {why}"))
                    .primary(span, "link declared here")
                    .with_help(
                        "every link must connect an existing output port to an existing input port",
                    ),
            );
        }
    }
}

/// M007: two processors share a name — links and input bindings resolve
/// by name, so the second processor shadows the first.
fn duplicate_names(wf: &Workflow, report: &mut LintReport) {
    let mut first: HashMap<&str, ProcId> = HashMap::new();
    for (i, p) in wf.processors.iter().enumerate() {
        match first.entry(p.name.as_str()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(ProcId(i));
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                report.push(
                    Diagnostic::error("M007", format!("duplicate processor name `{}`", p.name))
                        .primary(wf.spans.processor(ProcId(i)), "redeclared here")
                        .secondary(wf.spans.processor(*e.get()), "first declared here")
                        .with_help("rename one of the processors; links resolve by name"),
                );
            }
        }
    }
}

/// M008: a service processor with no service binding can never be
/// invoked.
fn missing_bindings(wf: &Workflow, report: &mut LintReport) {
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind == ProcessorKind::Service && p.binding.is_none() {
            report.push(
                Diagnostic::error("M008", format!("service `{}` has no binding", p.name))
                    .primary(wf.spans.processor(ProcId(i)), "declared here")
                    .with_help("bind the service to an executable descriptor"),
            );
        }
    }
}

/// M005: a link from a processor to itself. The token would need to
/// exist before the invocation that produces it.
fn self_links(wf: &Workflow, report: &mut LintReport) {
    for (i, l) in wf.links.iter().enumerate() {
        if l.from.proc == l.to.proc && wf.processors.get(l.from.proc.0).is_some() {
            let name = &wf.processors[l.from.proc.0].name;
            report.push(
                Diagnostic::warning("M005", format!("`{name}` is linked to itself"))
                    .primary(wf.spans.link(i), "self-link declared here")
                    .with_help(
                        "route loop iterations through a distinct processor with conditional \
                         output routing (paper Fig. 2)",
                    ),
            );
        }
    }
}

/// M004 (error) / M006 (note): data-link cycles.
///
/// The paper allows cycles *with conditional routing* — an output link
/// leaving the cycle bounds the iteration count at run time (Fig. 2).
/// A cycle no link ever leaves can never deliver a result: every token
/// circulates forever.
fn cycles(wf: &Workflow, report: &mut LintReport) {
    let scc_ids = wf.scc_ids();
    let mut members: HashMap<usize, Vec<ProcId>> = HashMap::new();
    for (v, &c) in scc_ids.iter().enumerate() {
        members.entry(c).or_default().push(ProcId(v));
    }
    for (cid, procs) in members {
        let is_cycle = procs.len() > 1
            || wf
                .links
                .iter()
                .any(|l| l.from.proc == procs[0] && l.to.proc == procs[0]);
        if !is_cycle {
            continue;
        }
        let mut names: Vec<&str> = procs
            .iter()
            .map(|p| wf.processors[p.0].name.as_str())
            .collect();
        names.sort_unstable();
        let has_exit = wf
            .links
            .iter()
            .any(|l| scc_ids[l.from.proc.0] == cid && scc_ids[l.to.proc.0] != cid);
        let span = wf.spans.processor(procs[0]);
        if has_exit {
            report.push(
                Diagnostic::note(
                    "M006",
                    format!(
                        "cycle through {}: iteration count is decided at run time by \
                         conditional output routing",
                        names.join(" → ")
                    ),
                )
                .primary(span, "part of the cycle"),
            );
        } else {
            report.push(
                Diagnostic::error(
                    "M004",
                    format!(
                        "closed cycle through {}: no link leaves the cycle, so tokens \
                         circulate forever",
                        names.join(" → ")
                    ),
                )
                .primary(span, "part of the cycle")
                .with_help("add an output link from a cycle member to a processor outside it"),
            );
        }
    }
}

/// M002 (error) / M003 (warning): reachability.
///
/// A processor no source can feed never receives a token and never
/// fires (M002). A reachable processor from which no sink is reachable
/// computes results that are silently discarded (M003).
fn reachability(wf: &Workflow, report: &mut LintReport) {
    let n = wf.processors.len();
    // Forward closure from sources.
    let mut reachable = vec![false; n];
    let mut stack: Vec<usize> = (0..n)
        .filter(|&v| wf.processors[v].kind == ProcessorKind::Source)
        .collect();
    for &v in &stack {
        reachable[v] = true;
    }
    while let Some(v) = stack.pop() {
        for s in wf.data_succs(ProcId(v)) {
            if !reachable[s.0] {
                reachable[s.0] = true;
                stack.push(s.0);
            }
        }
    }
    // Backward closure from sinks.
    let mut feeds_sink = vec![false; n];
    let mut stack: Vec<usize> = (0..n)
        .filter(|&v| wf.processors[v].kind == ProcessorKind::Sink)
        .collect();
    for &v in &stack {
        feeds_sink[v] = true;
    }
    while let Some(v) = stack.pop() {
        for p in wf.data_preds(ProcId(v)) {
            if !feeds_sink[p.0] {
                feeds_sink[p.0] = true;
                stack.push(p.0);
            }
        }
    }
    for v in 0..n {
        let p = &wf.processors[v];
        let span = wf.spans.processor(ProcId(v));
        if !reachable[v] {
            report.push(
                Diagnostic::error(
                    "M002",
                    format!(
                        "{} `{}` is unreachable from any source",
                        kind_name(p.kind),
                        p.name
                    ),
                )
                .primary(span, "never receives data")
                .with_help("connect it (transitively) to a <source>, or remove it"),
            );
        } else if !feeds_sink[v] && p.kind != ProcessorKind::Sink {
            report.push(
                Diagnostic::warning(
                    "M003",
                    format!(
                        "{} `{}` cannot reach any sink: its results are discarded",
                        kind_name(p.kind),
                        p.name
                    ),
                )
                .primary(span, "dead end")
                .with_help("link its outputs (transitively) to a <sink>, or remove it"),
            );
        }
    }
}

fn kind_name(kind: ProcessorKind) -> &'static str {
    match kind {
        ProcessorKind::Source => "source",
        ProcessorKind::Sink => "sink",
        ProcessorKind::Service => "processor",
    }
}
