//! The static rule registry.
//!
//! Each submodule contributes one family of checks over the parsed
//! [`Workflow`] (plus its [`crate::graph::SourceSpans`] side table):
//!
//! | module         | codes       | concern                               |
//! |----------------|-------------|---------------------------------------|
//! | [`graph`]      | M001–M008   | graph structure & reachability        |
//! | [`ports`]      | M010–M014   | port wiring and slot declarations     |
//! | [`cardinality`]| M020–M021   | iteration-strategy cardinality        |
//! | [`grouping`]   | M030–M031   | §3.6 job-grouping legality            |
//! | [`coordination`]| M040–M042  | barriers & coordination constraints   |
//! | [`descriptors`]| M050–M051, M070 | descriptor/catalog cross-validation |
//! | [`plan_rules`] | M080–M085   | interval cardinality & transfer model |
//!
//! Codes M060–M065 are reserved for the Scufl parse stage (emitted by
//! `moteur-scufl`'s lenient parser, before a graph exists). M070 warns
//! on non-deterministic services the data manager cannot memoize.
//! M086–M089 are reserved for future planner-backed rules.

pub mod cardinality;
pub mod coordination;
pub mod descriptors;
pub mod docs;
pub mod graph;
pub mod grouping;
pub mod plan_rules;
pub mod ports;

use crate::graph::Workflow;
use crate::lint::diag::LintReport;

/// Run every registered rule over `workflow` and return the sorted
/// report. This is the graph-stage half of `moteur lint`; parse-stage
/// diagnostics (M06x) come from the Scufl lenient parser.
pub fn lint_workflow(workflow: &Workflow) -> LintReport {
    let mut report = LintReport::default();
    graph::check(workflow, &mut report);
    ports::check(workflow, &mut report);
    cardinality::check(workflow, &mut report);
    grouping::check(workflow, &mut report);
    coordination::check(workflow, &mut report);
    descriptors::check(workflow, &mut report);
    plan_rules::check(workflow, &mut report);
    report.sort();
    report
}

/// Error-severity subset used as the enactor's pre-flight: structural
/// conditions under which enactment would panic, deadlock or silently
/// drop data. Warnings and notes are not evaluated here.
pub fn lint_errors(workflow: &Workflow) -> LintReport {
    let mut full = lint_workflow(workflow);
    full.diagnostics
        .retain(|d| d.severity == crate::lint::diag::Severity::Error);
    full
}
