//! Planner-backed rules (M080–M085): findings that need the interval
//! cardinality domain and the static transfer model of [`crate::plan`],
//! not just graph shape.
//!
//! The family reads the same analysis `moteur plan` reports on, with
//! the lint-context sizing convention (12 items per source, matching
//! the M021 example): M080/M082 bound invocation counts, M081/M083
//! weigh edges in bytes, M084/M085 flag pipeline- and cache-hostile
//! topology.

use crate::graph::{ProcId, ProcessorKind, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use crate::plan::interval::output_intervals;
use crate::plan::{transfer_edges, PlanOptions};
use crate::service::ServiceBinding;

/// Byte threshold below which M081/M083 stay quiet: flows under 1 MiB
/// are noise on any 2006-era grid link.
const BYTE_FLOOR: u64 = 1 << 20;

/// Run the interval-cardinality and transfer-model rules (M080–M085).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    let opts = PlanOptions::default();
    let edges = transfer_edges(wf, &opts);
    let out = output_intervals(wf, &opts.sizes);

    // M080: a cardinality explosion the cap can prove. Cycle-driven
    // unbounded streams are M006's concern, not a provable explosion.
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind != ProcessorKind::Service {
            continue;
        }
        if let Some(hi) = out[i].hi {
            if hi >= opts.explosion_cap {
                report.push(
                    Diagnostic::warning(
                        "M080",
                        format!(
                            "`{}` can fire up to {hi} times (cap {}): the campaign \
                             explodes combinatorially",
                            p.name, opts.explosion_cap
                        ),
                    )
                    .primary(
                        wf.spans.processor(ProcId(i)),
                        "invocation bound exceeds cap",
                    )
                    .with_help(
                        "replace cross-products on correlated streams with iteration=\"dot\", \
                         or reduce upstream fan-out",
                    ),
                );
            }
        }
    }

    // M081: one edge carries the majority of the workflow's bytes — a
    // partitioning opportunity `moteur plan` can quantify.
    let grid_edges: Vec<_> = edges.iter().filter(|e| e.grid).collect();
    if grid_edges.len() >= 2 {
        let total: u64 = grid_edges
            .iter()
            .filter_map(|e| e.bytes.hi)
            .fold(0u64, u64::saturating_add);
        for e in &grid_edges {
            let Some(hi) = e.bytes.hi else { continue };
            if total > 0 && hi >= BYTE_FLOOR && hi.saturating_mul(2) >= total {
                report.push(
                    Diagnostic::note(
                        "M081",
                        format!(
                            "edge {}:{} → {}:{} dominates the data flow: up to {hi} of \
                             {total} bytes transit it",
                            e.from, e.from_port, e.to, e.to_port
                        ),
                    )
                    .primary(span_of(wf, &e.to), "most enactor-routed bytes arrive here")
                    .with_help("`moteur plan` reports a site partition that internalizes it"),
                );
            }
        }
    }

    // M082: a service the cardinality analysis proves can never fire.
    // Distinct from M002 (unreachable) and M010 (unconnected): the
    // wiring may be complete, but an empty stream upstream starves it.
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind != ProcessorKind::Service {
            continue;
        }
        if out[i] == crate::plan::interval::CardInterval::exact(0) {
            report.push(
                Diagnostic::warning(
                    "M082",
                    format!(
                        "`{}` can never fire: its invocation interval is exactly 0",
                        p.name
                    ),
                )
                .primary(
                    wf.spans.processor(ProcId(i)),
                    "dead under the declared inputs",
                )
                .with_help(
                    "an upstream port receives no items — check dot pairings and \
                     unconnected ports on its ancestors",
                ),
            );
        }
    }

    // M083: an unconsumed output port whose stream is provably heavy.
    // M014 notes the structural fact; this warns when the discarded
    // bytes are material.
    for (i, p) in wf.processors.iter().enumerate() {
        if p.kind != ProcessorKind::Service {
            continue;
        }
        for (port, pname) in p.outputs.iter().enumerate() {
            let consumed = wf
                .links
                .iter()
                .any(|l| l.from.proc.0 == i && l.from.port == port);
            if consumed {
                continue;
            }
            let size = match &p.binding {
                Some(ServiceBinding::Descriptor { profile, .. }) => profile.output_size(pname),
                _ => crate::plan::DEFAULT_ITEM_BYTES,
            };
            let Some(hi) = out[i].hi else { continue };
            let wasted = hi.saturating_mul(size);
            if wasted >= BYTE_FLOOR {
                report.push(
                    Diagnostic::warning(
                        "M083",
                        format!(
                            "output port `{pname}` of `{}` discards up to {wasted} bytes \
                             per campaign: it is produced, registered and never consumed",
                            p.name
                        ),
                    )
                    .primary(wf.spans.processor(ProcId(i)), "unconsumed heavy output")
                    .with_help("link the port to a consumer or a sink, or drop the output"),
                );
            }
        }
    }

    // M084: a barrier astride a pipelinable service chain. Service
    // parallelism streams items through the chain; the barrier drains
    // the whole upstream stream before anything downstream starts.
    for (i, p) in wf.processors.iter().enumerate() {
        if !(p.kind == ProcessorKind::Service && p.synchronization) {
            continue;
        }
        let upstream_items = wf
            .data_preds(ProcId(i))
            .into_iter()
            .map(|pr| out[pr.0])
            .fold(crate::plan::interval::CardInterval::exact(0), |a, b| a + b);
        let pipelinable = upstream_items.hi.is_none_or(|hi| hi > 1);
        let service_pred = wf
            .data_preds(ProcId(i))
            .into_iter()
            .any(|pr| wf.processors[pr.0].kind == ProcessorKind::Service);
        let service_succ = wf
            .data_succs(ProcId(i))
            .into_iter()
            .any(|s| wf.processors[s.0].kind == ProcessorKind::Service);
        if pipelinable && service_pred && service_succ {
            report.push(
                Diagnostic::note(
                    "M084",
                    format!(
                        "barrier `{}` serializes an otherwise-pipelinable chain: \
                         downstream services wait for all {upstream_items} upstream items",
                        p.name
                    ),
                )
                .primary(
                    wf.spans.processor(ProcId(i)),
                    "sync=\"true\" drains the stream",
                )
                .with_help(
                    "if downstream services do not need the whole stream, drop \
                     sync=\"true\" to let service parallelism stream through",
                ),
            );
        }
    }

    // M085: memoization defeated downstream of a nondeterministic
    // service. M070 warns at the nondeterministic service itself; this
    // note marks the deterministic descendants whose cache keys will
    // never repeat across runs because their *inputs* differ each time.
    let nondet: Vec<usize> = wf
        .processors
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            matches!(&p.binding, Some(ServiceBinding::Descriptor { descriptor, .. })
                if descriptor.nondeterministic)
        })
        .map(|(i, _)| i)
        .collect();
    if !nondet.is_empty() {
        let mut tainted = vec![false; wf.processors.len()];
        let mut stack = nondet.clone();
        while let Some(v) = stack.pop() {
            for s in wf.data_succs(ProcId(v)) {
                if !tainted[s.0] {
                    tainted[s.0] = true;
                    stack.push(s.0);
                }
            }
        }
        for (i, p) in wf.processors.iter().enumerate() {
            let deterministic_descriptor = matches!(
                &p.binding,
                Some(ServiceBinding::Descriptor { descriptor, .. })
                    if !descriptor.nondeterministic
            );
            if tainted[i] && deterministic_descriptor {
                let origin = &wf.processors[nondet[0]].name;
                report.push(
                    Diagnostic::note(
                        "M085",
                        format!(
                            "memoization of `{}` is defeated: its inputs derive from \
                             non-deterministic `{origin}`, so cached invocations never \
                             match on warm runs",
                            p.name
                        ),
                    )
                    .primary(
                        wf.spans.processor(ProcId(i)),
                        "downstream of nondeterminism",
                    )
                    .with_help(
                        "expect this service to re-execute on every warm restart even \
                         though it is deterministic itself",
                    ),
                );
            }
        }
    }
}

/// Span of a processor looked up by name (edge reports carry names).
fn span_of(wf: &Workflow, name: &str) -> moteur_xml::Span {
    wf.find(name)
        .map_or(moteur_xml::Span::EMPTY, |id| wf.spans.processor(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IterationStrategy;
    use crate::lint::rules::lint_workflow;
    use crate::service::ServiceProfile;
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

    fn desc(name: &str, inputs: &[&str], nondet: bool) -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: name.into(),
                access: AccessMethod::Local,
                value: name.into(),
            },
            inputs: inputs
                .iter()
                .map(|i| InputSlot {
                    name: (*i).into(),
                    option: format!("-{i}"),
                    access: Some(AccessMethod::Gfn),
                    bytes: None,
                })
                .collect(),
            outputs: vec![OutputSlot {
                name: "out".into(),
                option: "-o".into(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: nondet,
        }
    }

    fn service(wf: &mut Workflow, name: &str, inputs: &[&str]) -> ProcId {
        wf.add_service(
            name,
            inputs,
            &["out"],
            ServiceBinding::descriptor(desc(name, inputs, false), ServiceProfile::new(1.0)),
        )
    }

    fn codes(wf: &Workflow) -> Vec<&'static str> {
        lint_workflow(wf)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn m080_fires_on_provable_explosions() {
        // Six chained cross-products: 12^6 ≈ 3·10⁶ ≥ the 10⁶ cap.
        let mut wf = Workflow::new("boom");
        let mut feeders: Vec<ProcId> = (0..6).map(|i| wf.add_source(format!("s{i}"))).collect();
        let mut prev: Option<ProcId> = None;
        for i in 0..6 {
            let x = service(&mut wf, &format!("x{i}"), &["l", "r"]);
            wf.set_iteration(x, IterationStrategy::Cross);
            let left = prev.unwrap_or_else(|| feeders.pop().unwrap());
            let right = feeders.pop().unwrap_or(left);
            wf.connect(left, "out", x, "l").unwrap();
            wf.connect(right, "out", x, "r").unwrap();
            prev = Some(x);
        }
        let sink = wf.add_sink("sink");
        wf.connect(prev.unwrap(), "out", sink, "in").unwrap();
        assert!(codes(&wf).contains(&"M080"));
    }

    #[test]
    fn m082_fires_on_starved_descendants() {
        // `a` has an unfed second port (M010), so `b` downstream can
        // never fire either — that consequence is M082's.
        let mut wf = Workflow::new("starved");
        let src = wf.add_source("src");
        let a = service(&mut wf, "a", &["in", "never_fed"]);
        let b = service(&mut wf, "b", &["in"]);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", b, "in").unwrap();
        wf.connect(b, "out", sink, "in").unwrap();
        let report = lint_workflow(&wf);
        let dead: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "M082")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(dead.len(), 2, "both a and b are dead: {dead:?}");
    }

    #[test]
    fn m083_weighs_unconsumed_outputs() {
        let mut wf = Workflow::new("waste");
        let src = wf.add_source("src");
        let heavy = wf.add_service(
            "heavy",
            &["in"],
            &["out", "debug"],
            ServiceBinding::descriptor(
                {
                    let mut d = desc("heavy", &["in"], false);
                    d.outputs.push(OutputSlot {
                        name: "debug".into(),
                        option: "-d".into(),
                        access: AccessMethod::Gfn,
                    });
                    d
                },
                ServiceProfile::new(1.0).with_output_bytes("debug", 10_000_000),
            ),
        );
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", heavy, "in").unwrap();
        wf.connect(heavy, "out", sink, "in").unwrap();
        let report = lint_workflow(&wf);
        // M014 notes the structural fact; M083 warns about the weight.
        assert!(report.diagnostics.iter().any(|d| d.code == "M014"));
        let m083 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "M083")
            .expect("M083 fires");
        assert!(m083.message.contains("120000000"), "{}", m083.message);
    }

    #[test]
    fn m084_fires_between_services_not_before_sinks() {
        let mut wf = Workflow::new("barrier");
        let src = wf.add_source("src");
        let a = service(&mut wf, "a", &["in"]);
        let mid = service(&mut wf, "mid", &["in"]);
        wf.set_synchronization(mid, true);
        let b = service(&mut wf, "b", &["in"]);
        let tail = service(&mut wf, "tail", &["in"]);
        wf.set_synchronization(tail, true);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", mid, "in").unwrap();
        wf.connect(mid, "out", b, "in").unwrap();
        wf.connect(b, "out", tail, "in").unwrap();
        wf.connect(tail, "out", sink, "in").unwrap();
        let m084: Vec<String> = lint_workflow(&wf)
            .diagnostics
            .iter()
            .filter(|d| d.code == "M084")
            .map(|d| d.message.clone())
            .collect();
        // `mid` serializes a→b; `tail` (bronze's MultiTransfoTest
        // shape) only feeds the sink and is fine.
        assert_eq!(m084.len(), 1, "{m084:?}");
        assert!(m084[0].contains("`mid`"));
    }

    #[test]
    fn m081_notes_the_dominant_edge() {
        // src ships 1 MB images; everything downstream is tiny.
        let mut wf = Workflow::new("dominated");
        let src = wf.add_source("src");
        wf.set_item_bytes(src, 1_000_000);
        let a = wf.add_service(
            "a",
            &["in"],
            &["out"],
            ServiceBinding::descriptor(
                desc("a", &["in"], false),
                ServiceProfile::new(1.0).with_output_bytes("out", 100),
            ),
        );
        let b = service(&mut wf, "b", &["in"]);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", b, "in").unwrap();
        wf.connect(b, "out", sink, "in").unwrap();
        let report = lint_workflow(&wf);
        let m081 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "M081")
            .expect("M081 fires");
        assert!(m081.message.contains("src:out → a:in"), "{}", m081.message);
    }

    #[test]
    fn m085_taints_descendants_of_nondeterminism() {
        let mut wf = Workflow::new("nondet");
        let src = wf.add_source("src");
        let dice = wf.add_service(
            "dice",
            &["in"],
            &["out"],
            ServiceBinding::descriptor(desc("dice", &["in"], true), ServiceProfile::new(1.0)),
        );
        let pure = service(&mut wf, "pure", &["in"]);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", dice, "in").unwrap();
        wf.connect(dice, "out", pure, "in").unwrap();
        wf.connect(pure, "out", sink, "in").unwrap();
        let report = lint_workflow(&wf);
        // M070 at the origin, M085 at the pure descendant only.
        assert!(report.diagnostics.iter().any(|d| d.code == "M070"));
        let m085: Vec<&String> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "M085")
            .map(|d| &d.message)
            .collect();
        assert_eq!(m085.len(), 1, "{m085:?}");
        assert!(m085[0].contains("`pure`"));
    }

    #[test]
    fn clean_pipelines_stay_quiet() {
        let mut wf = Workflow::new("clean");
        let src = wf.add_source("src");
        let a = service(&mut wf, "a", &["in"]);
        let b = service(&mut wf, "b", &["in"]);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", b, "in").unwrap();
        wf.connect(b, "out", sink, "in").unwrap();
        let found = codes(&wf);
        for code in ["M080", "M081", "M082", "M083", "M084", "M085"] {
            assert!(!found.contains(&code), "{code} fired on a clean chain");
        }
    }
}
