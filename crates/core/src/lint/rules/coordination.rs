//! Barrier and coordination-constraint rules (M040–M042).
//!
//! Synchronization barriers and `<coordination>` edges both throttle
//! parallelism (they defeat the Σ_SP/Σ_DP optimisations of eq. 2–4), so
//! ones that buy nothing are worth flagging.

use crate::graph::{ProcId, Workflow};
use crate::lint::diag::{Diagnostic, LintReport};
use crate::lint::rules::cardinality::{output_cardinalities, Card};

/// Run the barrier/coordination rules (M040–M042).
pub fn check(wf: &Workflow, report: &mut LintReport) {
    no_op_barriers(wf, report);
    coordination_cycles(wf, report);
    redundant_coordination(wf, report);
}

/// M040: a synchronization barrier that never holds anything back —
/// either it has no inbound data at all, or every input stream already
/// carries a single item. It still serialises the workflow (a barrier
/// caps its segment's data parallelism, paper §3.4) for no benefit.
fn no_op_barriers(wf: &Workflow, report: &mut LintReport) {
    let cards = output_cardinalities(wf);
    let resolved: Vec<Option<Card>> = cards.iter().cloned().map(Some).collect();
    for (i, p) in wf.processors.iter().enumerate() {
        if !p.synchronization {
            continue;
        }
        let id = ProcId(i);
        let has_inbound = wf.links.iter().any(|l| l.to.proc == id);
        let all_single = crate::lint::rules::cardinality::input_cards(wf, id, &resolved)
            .is_some_and(|ins| !ins.is_empty() && ins.iter().all(|c| *c == Card::One));
        if !has_inbound {
            report.push(
                Diagnostic::warning(
                    "M040",
                    format!("barrier `{}` has no inbound data to synchronize", p.name),
                )
                .primary(wf.spans.processor(id), "sync=\"true\" declared here")
                .with_help("remove sync=\"true\" or connect the inputs it should wait for"),
            );
        } else if all_single {
            report.push(
                Diagnostic::warning(
                    "M040",
                    format!(
                        "barrier `{}` only ever sees single-item streams: the barrier \
                         is a no-op but still blocks service parallelism",
                        p.name
                    ),
                )
                .primary(wf.spans.processor(id), "sync=\"true\" declared here")
                .with_help("drop sync=\"true\"; every upstream stream already has cardinality 1"),
            );
        }
    }
}

/// M041: a coordination constraint `a before b` while `b` already
/// precedes `a` through data and/or control edges. The enactor can
/// never satisfy both orders: `b`'s jobs wait on `a`, whose inputs wait
/// on `b` — a deadlock, not a cycle bounded by conditional routing.
fn coordination_cycles(wf: &Workflow, report: &mut LintReport) {
    for (ci, &(a, b)) in wf.control.iter().enumerate() {
        if a == b {
            report.push(
                Diagnostic::error(
                    "M041",
                    format!(
                        "coordination constraint on `{}` orders the processor before itself",
                        wf.processor(a).name
                    ),
                )
                .primary(wf.spans.control_edge(ci), "declared here"),
            );
            continue;
        }
        if reaches(wf, b, a, ci) {
            report.push(
                Diagnostic::error(
                    "M041",
                    format!(
                        "coordination constraint `{} before {}` contradicts the existing \
                         `{} → {}` ordering: enactment deadlocks",
                        wf.processor(a).name,
                        wf.processor(b).name,
                        wf.processor(b).name,
                        wf.processor(a).name,
                    ),
                )
                .primary(wf.spans.control_edge(ci), "declared here")
                .with_help("drop this constraint or reverse it to match the data flow"),
            );
        }
    }
}

/// Can `from` reach `to` through data links and control edges (skipping
/// control edge `skip`, the one under examination)?
fn reaches(wf: &Workflow, from: ProcId, to: ProcId, skip: usize) -> bool {
    let mut seen = vec![false; wf.processors.len()];
    let mut stack = vec![from];
    seen[from.0] = true;
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        for s in wf.data_succs(v) {
            if !seen[s.0] {
                seen[s.0] = true;
                stack.push(s);
            }
        }
        for (ci, &(a, b)) in wf.control.iter().enumerate() {
            if ci != skip && a == v && !seen[b.0] {
                seen[b.0] = true;
                stack.push(b);
            }
        }
    }
    false
}

/// M042: a coordination constraint between two processors a data link
/// already orders. The data dependency enforces the same sequencing,
/// so the constraint only disqualifies both endpoints from job
/// grouping (§3.6) without adding anything.
fn redundant_coordination(wf: &Workflow, report: &mut LintReport) {
    for (ci, &(a, b)) in wf.control.iter().enumerate() {
        if a == b {
            continue; // M041's case
        }
        let direct = wf.links.iter().any(|l| l.from.proc == a && l.to.proc == b);
        if direct {
            report.push(
                Diagnostic::warning(
                    "M042",
                    format!(
                        "coordination constraint `{} before {}` duplicates an existing \
                         data link",
                        wf.processor(a).name,
                        wf.processor(b).name,
                    ),
                )
                .primary(wf.spans.control_edge(ci), "declared here")
                .secondary(
                    wf.spans.processor(a),
                    "already feeds the constrained processor",
                )
                .with_help(
                    "remove the constraint; the data dependency already enforces this order \
                     and the constraint blocks job grouping (§3.6)",
                ),
            );
        }
    }
}
