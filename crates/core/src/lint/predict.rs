//! Static makespan/job-count prediction (`moteur lint --predict`).
//!
//! Evaluates the paper's closed forms (eq. 1–4, §3.5) over the
//! workflow's declared cost models *without enacting anything*: for a
//! campaign of `n_data` input sets it predicts, per parallelism
//! configuration, how many grid jobs would be submitted and what the
//! makespan would be. The same [`TimeMatrix`] the enactor-vs-model
//! tests validate does the arithmetic, so the prediction agrees with
//! `moteur run` on an ideal backend by construction.

use crate::error::MoteurError;
use crate::graph::{ProcessorKind, Workflow};
use crate::grouping::group_workflow;
use crate::lint::rules::cardinality::output_cardinalities;
use crate::model::TimeMatrix;
use crate::obs::json::{array, JsonObject};
use std::fmt::Write as _;

/// One configuration's predicted cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionRow {
    /// Configuration label, matching `moteur run --config`.
    pub config: &'static str,
    /// Grid jobs the campaign would submit.
    pub jobs: u64,
    /// Predicted makespan in seconds (eq. 1–4 on the critical path).
    pub makespan: f64,
}

/// The full prediction for one workflow and campaign size.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Input-set size the campaign was predicted for.
    pub n_data: usize,
    /// Per-job grid latency assumed (seconds).
    pub overhead: f64,
    /// Services on the critical path (the paper's `n_W`).
    pub n_services: usize,
    /// One row per enactment configuration, `nop` first.
    pub rows: Vec<PredictionRow>,
}

impl Prediction {
    /// The row for one configuration label (`"sp+dp"`, ...).
    pub fn row(&self, config: &str) -> Option<&PredictionRow> {
        self.rows.iter().find(|r| r.config == config)
    }
}

/// Predict job counts and makespans for every enactment configuration.
///
/// `overhead` is the per-job grid latency (the paper's submission +
/// scheduling overhead), added to every job's duration.
pub fn predict(wf: &Workflow, n_data: usize, overhead: f64) -> Result<Prediction, MoteurError> {
    // Infinite bandwidth makes every transfer free — eq. 1–4 verbatim.
    predict_with_transfer(wf, n_data, overhead, f64::INFINITY)
}

/// Like [`predict`], with each job additionally charged the time to
/// move its input and output items through the central enactor at
/// `bandwidth` bytes/s (item sizes from the static transfer model).
/// Grouped configurations benefit twice: fewer jobs *and* no transfers
/// on the edges a group internalizes.
pub fn predict_with_transfer(
    wf: &Workflow,
    n_data: usize,
    overhead: f64,
    bandwidth: f64,
) -> Result<Prediction, MoteurError> {
    if n_data == 0 {
        return Err(MoteurError::new("prediction needs at least one data set"));
    }
    let xfer = crate::plan::central_transfer_seconds(wf, n_data as u64, bandwidth);
    let base = TimeMatrix::from_workflow_with(wf, n_data, overhead, |id| {
        xfer.get(&wf.processor(id).name).copied().unwrap_or(0.0)
    })?;
    let base_jobs = job_count(wf, n_data);
    let grouped_wf = group_workflow(wf)?;
    let grouped_xfer = crate::plan::central_transfer_seconds(&grouped_wf, n_data as u64, bandwidth);
    let grouped = TimeMatrix::from_workflow_with(&grouped_wf, n_data, overhead, |id| {
        grouped_xfer
            .get(&grouped_wf.processor(id).name)
            .copied()
            .unwrap_or(0.0)
    })?;
    let grouped_jobs = job_count(&grouped_wf, n_data);
    let rows = vec![
        PredictionRow {
            config: "nop",
            jobs: base_jobs,
            makespan: base.sigma_sequential(),
        },
        PredictionRow {
            config: "jg",
            jobs: grouped_jobs,
            makespan: grouped.sigma_sequential(),
        },
        PredictionRow {
            config: "dp",
            jobs: base_jobs,
            makespan: base.sigma_dp(),
        },
        PredictionRow {
            config: "sp",
            jobs: base_jobs,
            makespan: base.sigma_sp(),
        },
        PredictionRow {
            config: "sp+dp",
            jobs: base_jobs,
            makespan: base.sigma_dsp(),
        },
        PredictionRow {
            config: "sp+dp+jg",
            jobs: grouped_jobs,
            makespan: grouped.sigma_dsp(),
        },
    ];
    Ok(Prediction {
        n_data,
        overhead,
        n_services: base.n_services(),
        rows,
    })
}

/// Total jobs a campaign submits: one per service invocation. Barriers
/// fire once; other services fire once per item of their output stream
/// (cardinality analysis), defaulting to `n_data` when the stream is
/// not statically known.
fn job_count(wf: &Workflow, n_data: usize) -> u64 {
    let cards = output_cardinalities(wf);
    wf.processors
        .iter()
        .zip(&cards)
        .filter(|(p, _)| p.kind == ProcessorKind::Service)
        .map(|(p, card)| {
            if p.synchronization {
                1
            } else {
                card.count(n_data).unwrap_or(n_data as u64)
            }
        })
        .sum()
}

/// Render the prediction as an aligned table.
pub fn render_prediction(pred: &Prediction) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "prediction for n_data = {}, per-job overhead = {}s, critical path = {} services \
         (eq. 1-4, §3.5):",
        pred.n_data, pred.overhead, pred.n_services
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>14}",
        "config", "jobs", "makespan(s)"
    );
    for r in &pred.rows {
        let _ = writeln!(out, "  {:<10} {:>8} {:>14.2}", r.config, r.jobs, r.makespan);
    }
    out
}

/// Serialise the prediction for `moteur lint --predict --json`.
pub fn prediction_to_json(pred: &Prediction) -> String {
    let rows = pred.rows.iter().map(|r| {
        JsonObject::new()
            .str("config", r.config)
            .uint("jobs", r.jobs)
            .num("makespan", r.makespan)
            .finish()
    });
    JsonObject::new()
        .uint("n_data", pred.n_data as u64)
        .num("overhead", pred.overhead)
        .uint("n_services", pred.n_services as u64)
        .raw("rows", &array(rows))
        .finish()
}

/// The closed set of configuration keys a prediction can contain, in
/// row order.
pub const CONFIG_KEYS: [&str; 6] = ["nop", "jg", "dp", "sp", "sp+dp", "sp+dp+jg"];

/// Parse a prediction back from its [`prediction_to_json`] rendering —
/// the machine-readable contract of `moteur lint --predict --json` that
/// the drift layer and external tools consume.
pub fn prediction_from_json(json: &str) -> Result<Prediction, MoteurError> {
    let bad = |what: &str| MoteurError::new(format!("prediction JSON: {what}"));
    let value = crate::lint::render::JsonValue::parse(json)
        .map_err(|e| bad(&format!("parse error: {e}")))?;
    let n_data = value
        .get("n_data")
        .and_then(crate::lint::render::JsonValue::as_usize)
        .ok_or_else(|| bad("missing n_data"))?;
    let overhead = value
        .get("overhead")
        .and_then(crate::lint::render::JsonValue::as_f64)
        .ok_or_else(|| bad("missing overhead"))?;
    let n_services = value
        .get("n_services")
        .and_then(crate::lint::render::JsonValue::as_usize)
        .ok_or_else(|| bad("missing n_services"))?;
    let rows = value
        .get("rows")
        .and_then(crate::lint::render::JsonValue::as_array)
        .ok_or_else(|| bad("missing rows"))?;
    let mut parsed = Vec::with_capacity(rows.len());
    for row in rows {
        let config_str = row
            .get("config")
            .and_then(crate::lint::render::JsonValue::as_str)
            .ok_or_else(|| bad("row missing config"))?;
        // Configs are a closed set; intern against it rather than leak.
        let config = CONFIG_KEYS
            .iter()
            .find(|k| **k == config_str)
            .copied()
            .ok_or_else(|| bad(&format!("unknown config '{config_str}'")))?;
        let jobs = row
            .get("jobs")
            .and_then(crate::lint::render::JsonValue::as_usize)
            .ok_or_else(|| bad("row missing jobs"))?;
        let makespan = row
            .get("makespan")
            .and_then(crate::lint::render::JsonValue::as_f64)
            .ok_or_else(|| bad("row missing makespan"))?;
        parsed.push(PredictionRow {
            config,
            jobs: jobs as u64,
            makespan,
        });
    }
    Ok(Prediction {
        n_data,
        overhead,
        n_services,
        rows: parsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceBinding, ServiceProfile};
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

    fn desc(name: &str, input: &str, output: &str) -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: name.into(),
                access: AccessMethod::Local,
                value: name.into(),
            },
            inputs: vec![InputSlot {
                name: input.into(),
                option: "-i".into(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            }],
            outputs: vec![OutputSlot {
                name: output.into(),
                option: "-o".into(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: false,
        }
    }

    /// source → s0 → s1 → s2 → s3 → s4 → sink, each costing `t`.
    fn chain(n_w: usize, t: f64) -> Workflow {
        let mut wf = Workflow::new("chain");
        let src = wf.add_source("src");
        let mut prev = src;
        let mut prev_port = "out".to_string();
        for i in 0..n_w {
            let name = format!("s{i}");
            let svc = wf.add_service(
                &name,
                &["in"],
                &["out"],
                ServiceBinding::descriptor(desc(&name, "in", "out"), ServiceProfile::new(t)),
            );
            wf.connect(prev, &prev_port, svc, "in").unwrap();
            prev = svc;
            prev_port = "out".to_string();
        }
        let sink = wf.add_sink("sink");
        wf.connect(prev, "out", sink, "in").unwrap();
        wf
    }

    #[test]
    fn constant_chain_matches_the_papers_closed_forms() {
        // §3.5.4 with T constant: Σ = n_D·n_W·T, Σ_DP = Σ_DSP = n_W·T,
        // Σ_SP = (n_D + n_W − 1)·T — the `theory` bench's table.
        let (n_w, t) = (5, 100.0);
        let wf = chain(n_w, t);
        for n_d in [12usize, 66, 126] {
            let p = predict(&wf, n_d, 0.0).unwrap();
            assert_eq!(p.n_services, n_w);
            let tol = 1e-9;
            assert!((p.row("nop").unwrap().makespan - (n_d * n_w) as f64 * t).abs() < tol);
            assert!((p.row("dp").unwrap().makespan - n_w as f64 * t).abs() < tol);
            assert!((p.row("sp+dp").unwrap().makespan - n_w as f64 * t).abs() < tol);
            assert!((p.row("sp").unwrap().makespan - (n_d + n_w - 1) as f64 * t).abs() < tol);
            // The whole chain groups into one job per data set.
            assert_eq!(p.row("nop").unwrap().jobs, (n_d * n_w) as u64);
            assert_eq!(p.row("jg").unwrap().jobs, n_d as u64);
            assert!((p.row("jg").unwrap().makespan - (n_d * n_w) as f64 * t).abs() < tol);
            assert!((p.row("sp+dp+jg").unwrap().makespan - n_w as f64 * t).abs() < tol);
        }
    }

    #[test]
    fn overhead_is_charged_per_job() {
        let wf = chain(2, 10.0);
        let p = predict(&wf, 3, 5.0).unwrap();
        // nop: 3 data × 2 services × (10 + 5).
        assert!((p.row("nop").unwrap().makespan - 90.0).abs() < 1e-9);
        // jg: one grouped job per data set = 3 × (5 + 20).
        assert!((p.row("jg").unwrap().makespan - 75.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_term_charges_declared_item_sizes() {
        // src (2 MB/item) → a (1 MB outputs) → b (1 MB outputs) → sink,
        // 1 MB/s links: a moves 3 MB per job, b 2 MB.
        let mut wf = Workflow::new("xfer");
        let src = wf.add_source("src");
        wf.set_item_bytes(src, 2_000_000);
        let a = wf.add_service(
            "a",
            &["in"],
            &["out"],
            ServiceBinding::descriptor(
                desc("a", "in", "out"),
                ServiceProfile::new(10.0).with_output_bytes("out", 1_000_000),
            ),
        );
        let b = wf.add_service(
            "b",
            &["in"],
            &["out"],
            ServiceBinding::descriptor(
                desc("b", "in", "out"),
                ServiceProfile::new(10.0).with_output_bytes("out", 1_000_000),
            ),
        );
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", b, "in").unwrap();
        wf.connect(b, "out", sink, "in").unwrap();

        let free = predict(&wf, 4, 0.0).unwrap();
        let priced = predict_with_transfer(&wf, 4, 0.0, 1.0e6).unwrap();
        let tol = 1e-9;
        assert!((free.row("sp+dp").unwrap().makespan - 20.0).abs() < tol);
        // (10 + 3) + (10 + 2) per data set.
        assert!((priced.row("sp+dp").unwrap().makespan - 25.0).abs() < tol);
        // Grouping internalizes a→b: the grouped job moves only the
        // 2 MB input and the final 1 MB output.
        assert!(
            priced.row("sp+dp+jg").unwrap().makespan < priced.row("sp+dp").unwrap().makespan - tol
        );
    }

    #[test]
    fn rejects_empty_campaigns() {
        let wf = chain(1, 1.0);
        assert!(predict(&wf, 0, 0.0).is_err());
        assert!(predict(&wf, 1, 0.0).is_ok());
    }

    #[test]
    fn render_and_json_contain_every_config() {
        let wf = chain(2, 10.0);
        let p = predict(&wf, 4, 0.0).unwrap();
        let table = render_prediction(&p);
        let json = prediction_to_json(&p);
        for config in ["nop", "jg", "dp", "sp", "sp+dp", "sp+dp+jg"] {
            assert!(table.contains(config), "table missing {config}");
            assert!(json.contains(&format!("\"config\":\"{config}\"")));
        }
        let parsed = crate::lint::render::JsonValue::parse(&json).unwrap();
        assert_eq!(parsed.get("rows").unwrap().as_array().unwrap().len(), 6);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let wf = chain(3, 7.5);
        let original = predict(&wf, 12, 2.5).unwrap();
        let recovered = prediction_from_json(&prediction_to_json(&original)).unwrap();
        assert_eq!(recovered, original);
    }

    #[test]
    fn malformed_prediction_json_is_rejected_with_context() {
        for (input, what) in [
            ("not json", "parse error"),
            ("{}", "missing n_data"),
            (
                "{\"n_data\":1,\"overhead\":0,\"n_services\":1}",
                "missing rows",
            ),
            (
                "{\"n_data\":1,\"overhead\":0,\"n_services\":1,\
                 \"rows\":[{\"config\":\"warp9\",\"jobs\":1,\"makespan\":1}]}",
                "unknown config",
            ),
            (
                "{\"n_data\":1,\"overhead\":0,\"n_services\":1,\
                 \"rows\":[{\"config\":\"nop\",\"makespan\":1}]}",
                "row missing jobs",
            ),
        ] {
            let err = prediction_from_json(input).unwrap_err().to_string();
            assert!(err.contains(what), "{input} -> {err}");
        }
    }
}
