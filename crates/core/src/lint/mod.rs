//! Static workflow diagnostics (`moteur lint`).
//!
//! A rustc-style analysis pass over a parsed [`crate::graph::Workflow`]
//! and its descriptor catalog, run *before* enactment: each rule emits
//! [`Diagnostic`]s with a stable `M0xx` code, a severity, and labelled
//! byte spans into the SCUFL source (when the workflow was parsed from
//! one — programmatic workflows lint fine, just without carets).
//!
//! Layering:
//!
//! - [`diag`] — the diagnostic data model (severity, labels, report)
//! - [`rules`] — the rule registry ([`lint_workflow`] runs all of it)
//! - [`render`] — human renderer and the JSON codec
//! - [`mod@predict`] — eq. 1–4 makespan/job-count prediction (`--predict`)
//!
//! The enactor runs the error-severity subset ([`lint_errors`]) as a
//! pre-flight and refuses to enact a workflow with findings, unless the
//! caller opts out (`moteur run --no-verify`).

#![warn(missing_docs)]

pub mod diag;
pub mod predict;
pub mod render;
pub mod rules;

pub use diag::{Diagnostic, Label, LintReport, Severity};
pub use predict::{
    predict, predict_with_transfer, prediction_from_json, prediction_to_json, render_prediction,
    Prediction, PredictionRow, CONFIG_KEYS,
};
pub use render::{intern_code, render_human, report_from_json, report_to_json, JsonValue};
pub use rules::cardinality::{output_cardinalities, Card};
pub use rules::docs::{explain, render_explain, RuleDoc, RULE_DOCS};
pub use rules::{lint_errors, lint_workflow};
