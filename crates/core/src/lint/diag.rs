//! Diagnostic data model: rule codes, severities, labelled spans.
//!
//! Modelled on rustc's diagnostics: each finding has a stable rule code
//! (`M0xx`), a severity, a primary message, one or more labelled byte
//! spans into the SCUFL source, and an optional `help` suggestion.
//! Renderers live in [`crate::lint::render`].

use moteur_xml::Span;
use std::fmt;

/// How serious a finding is.
///
/// Ordering is by increasing severity (`Note < Warning < Error`) so
/// `max()` over a report yields the worst finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — structural facts worth knowing (grouping
    /// opportunities, run-time-bounded cycles). Never fails a lint run.
    Note,
    /// Suspicious but enactable; fails under `--deny-warnings`.
    Warning,
    /// The workflow cannot enact correctly; `moteur run` refuses it.
    Error,
}

impl Severity {
    /// Lowercase name used by both renderers (`error`, `warning`,
    /// `note`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Inverse of [`Severity::name`] (used by the JSON round-trip).
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "error" => Some(Severity::Error),
            "warning" => Some(Severity::Warning),
            "note" => Some(Severity::Note),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A labelled span: where in the source, and what to say about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Byte range into the SCUFL source.
    pub span: Span,
    /// What to say at that location.
    pub message: String,
    /// Primary labels carry the caret in the human renderer; secondary
    /// labels are underlined context ("required input declared here").
    pub primary: bool,
}

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`M001`…), see the README rule table.
    pub code: &'static str,
    /// How bad it is (drives exit codes and rendering).
    pub severity: Severity,
    /// The headline, stated as a fact about the workflow.
    pub message: String,
    /// Labelled source locations, primary first by convention.
    pub labels: Vec<Label>,
    /// Optional actionable suggestion.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no labels yet.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            labels: Vec::new(),
            help: None,
        }
    }

    /// Shorthand for an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message)
    }

    /// Shorthand for a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, message)
    }

    /// Shorthand for a note-severity diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Note, message)
    }

    /// Attach the primary label.
    pub fn primary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label {
            span,
            message: message.into(),
            primary: true,
        });
        self
    }

    /// Attach a secondary label.
    pub fn secondary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label {
            span,
            message: message.into(),
            primary: false,
        });
        self
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// The primary label's span ([`Span::EMPTY`] when unlabelled).
    pub fn primary_span(&self) -> Span {
        self.labels
            .iter()
            .find(|l| l.primary)
            .map_or(Span::EMPTY, |l| l.span)
    }
}

/// The outcome of a lint run: every diagnostic, in report order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Every finding, in report order (see [`LintReport::sort`]).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// A report over pre-collected findings (e.g. the parse stage's).
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { diagnostics }
    }

    /// Append one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append findings from another pass.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// `true` when no rule found anything.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Total number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// `true` when at least one error is present.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Would this report fail the run? Errors always do; warnings only
    /// under `deny_warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.warnings() > 0)
    }

    /// Iterate diagnostics with at least `min` severity.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity >= min)
    }

    /// Sort for presentation: by primary-span position, then severity
    /// (worst first), then code — stable across rule execution order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.primary_span().start,
                    std::cmp::Reverse(d.severity),
                    d.code,
                )
            };
            key(a).cmp(&key(b))
        });
    }

    /// One-line summary: `2 errors, 1 warning, 3 notes`.
    pub fn summary(&self) -> String {
        let part = |n: usize, what: &str| -> Option<String> {
            match n {
                0 => None,
                1 => Some(format!("1 {what}")),
                n => Some(format!("{n} {what}s")),
            }
        };
        let parts: Vec<String> = [
            part(self.errors(), "error"),
            part(self.warnings(), "warning"),
            part(self.notes(), "note"),
        ]
        .into_iter()
        .flatten()
        .collect();
        if parts.is_empty() {
            "no findings".to_string()
        } else {
            parts.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::from_name("warning"), Some(Severity::Warning));
        assert_eq!(Severity::from_name("fatal"), None);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn builder_attaches_labels_and_help() {
        let d = Diagnostic::error("M001", "dangling link")
            .primary(Span::new(5, 9), "unknown processor")
            .secondary(Span::new(1, 3), "declared here")
            .with_help("check the processor name");
        assert_eq!(d.primary_span(), Span::new(5, 9));
        assert_eq!(d.labels.len(), 2);
        assert!(!d.labels[1].primary);
        assert_eq!(d.help.as_deref(), Some("check the processor name"));
    }

    #[test]
    fn report_counts_and_fails() {
        let mut r = LintReport::default();
        assert!(!r.fails(true));
        assert_eq!(r.summary(), "no findings");
        r.push(Diagnostic::warning("M011", "w"));
        r.push(Diagnostic::note("M030", "n"));
        assert!(!r.fails(false));
        assert!(r.fails(true));
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        r.push(Diagnostic::error("M010", "e"));
        assert!(r.fails(false));
        assert_eq!(r.summary(), "1 error, 1 warning, 1 note");
        assert_eq!(r.at_least(Severity::Warning).count(), 2);
    }

    #[test]
    fn sort_orders_by_span_then_severity() {
        let mut r = LintReport::default();
        r.push(Diagnostic::note("M030", "late").primary(Span::new(50, 60), ""));
        r.push(Diagnostic::warning("M011", "early-warn").primary(Span::new(10, 20), ""));
        r.push(Diagnostic::error("M010", "early-err").primary(Span::new(10, 20), ""));
        r.sort();
        let codes: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["M010", "M011", "M030"]);
    }
}
