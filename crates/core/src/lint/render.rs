//! Diagnostic renderers: rustc-style human output and a JSON codec.
//!
//! The JSON side is a *codec*, not just an exporter: because the
//! workspace is hermetic (no serde), [`report_from_json`] hand-rolls a
//! small JSON parser so `moteur lint --json` output round-trips back
//! into a [`LintReport`] — which is also how the test suite proves the
//! output is well-formed.

use crate::lint::diag::{Diagnostic, Label, LintReport, Severity};
use crate::obs::json::{array, JsonObject};
use moteur_xml::Span;
use std::fmt::Write as _;

/// Every rule code the suite can emit. JSON input is interned against
/// this table so [`Diagnostic::code`] can stay `&'static str`.
pub const KNOWN_CODES: &[&str] = &[
    "M000", "M001", "M002", "M003", "M004", "M005", "M006", "M007", "M008", "M010", "M011", "M012",
    "M013", "M014", "M020", "M021", "M030", "M031", "M040", "M041", "M042", "M050", "M051", "M060",
    "M061", "M062", "M063", "M064", "M070", "M080", "M081", "M082", "M083", "M084", "M085",
];

/// Intern `code` against [`KNOWN_CODES`].
pub fn intern_code(code: &str) -> Option<&'static str> {
    KNOWN_CODES.iter().copied().find(|c| *c == code)
}

// ---------------------------------------------------------------------
// Human renderer
// ---------------------------------------------------------------------

/// Render the whole report the way rustc would: one block per
/// diagnostic with source snippets and carets when `source` is
/// available, followed by a summary line.
pub fn render_human(report: &LintReport, path: &str, source: Option<&str>) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        render_diagnostic(&mut out, d, path, source);
        out.push('\n');
    }
    let _ = writeln!(out, "{}: {}", path, report.summary());
    out
}

fn render_diagnostic(out: &mut String, d: &Diagnostic, path: &str, source: Option<&str>) {
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    for label in &d.labels {
        render_label(out, label, path, source);
    }
    if let Some(help) = &d.help {
        let _ = writeln!(out, "  = help: {help}");
    }
}

fn render_label(out: &mut String, label: &Label, path: &str, source: Option<&str>) {
    if label.span.is_empty() {
        if !label.message.is_empty() {
            let _ = writeln!(out, "  = note: {}", label.message);
        }
        return;
    }
    let Some(source) = source else {
        let _ = writeln!(
            out,
            "  --> {path}:@{}..{}: {}",
            label.span.start, label.span.end, label.message
        );
        return;
    };
    let (line, col) = label.span.line_col(source);
    let _ = writeln!(out, "  --> {path}:{line}:{col}");
    // The full source line containing the span start.
    let start = label.span.start.min(source.len());
    let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[start..]
        .find('\n')
        .map_or(source.len(), |i| start + i);
    let text = &source[line_start..line_end];
    let gutter = line.to_string().len().max(2);
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{line:>gutter$} | {text}");
    // Caret row: primary labels get `^`, secondary `-`.
    let pad = source[line_start..start].chars().count();
    let span_on_line = label.span.end.min(line_end).saturating_sub(start).max(1);
    let marks = source[start..(start + span_on_line).min(line_end.max(start))]
        .chars()
        .count()
        .max(1);
    let mark = if label.primary { '^' } else { '-' };
    let _ = writeln!(
        out,
        "{:gutter$} | {:pad$}{} {}",
        "",
        "",
        mark.to_string().repeat(marks),
        label.message
    );
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

/// Serialise the report to a single-line JSON object.
pub fn report_to_json(report: &LintReport) -> String {
    let diags = report.diagnostics.iter().map(|d| {
        let labels = d.labels.iter().map(|l| {
            JsonObject::new()
                .uint("start", l.span.start as u64)
                .uint("end", l.span.end as u64)
                .bool("primary", l.primary)
                .str("message", &l.message)
                .finish()
        });
        let mut obj = JsonObject::new()
            .str("code", d.code)
            .str("severity", d.severity.name())
            .str("message", &d.message)
            .raw("labels", &array(labels));
        if let Some(help) = &d.help {
            obj = obj.str("help", help);
        }
        obj.finish()
    });
    JsonObject::new()
        .raw("diagnostics", &array(diags))
        .uint("errors", report.errors() as u64)
        .uint("warnings", report.warnings() as u64)
        .uint("notes", report.notes() as u64)
        .str("summary", &report.summary())
        .finish()
}

// ---------------------------------------------------------------------
// JSON import (hand-rolled parser — the workspace has no serde)
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array, in document order.
    Array(Vec<JsonValue>),
    /// An object, fields in document order (duplicates kept).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64()
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are sound).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Rebuild a [`LintReport`] from `moteur lint --json` output.
pub fn report_from_json(text: &str) -> Result<LintReport, String> {
    let root = JsonValue::parse(text)?;
    let diags = root
        .get("diagnostics")
        .and_then(JsonValue::as_array)
        .ok_or("missing `diagnostics` array")?;
    let mut report = LintReport::default();
    for d in diags {
        let code = d
            .get("code")
            .and_then(JsonValue::as_str)
            .ok_or("diagnostic without `code`")?;
        let code = intern_code(code).ok_or_else(|| format!("unknown rule code `{code}`"))?;
        let severity = d
            .get("severity")
            .and_then(JsonValue::as_str)
            .and_then(Severity::from_name)
            .ok_or("diagnostic without a valid `severity`")?;
        let message = d
            .get("message")
            .and_then(JsonValue::as_str)
            .ok_or("diagnostic without `message`")?
            .to_string();
        let mut diag = Diagnostic::new(code, severity, message);
        if let Some(labels) = d.get("labels").and_then(JsonValue::as_array) {
            for l in labels {
                let start = l
                    .get("start")
                    .and_then(JsonValue::as_usize)
                    .ok_or("label without `start`")?;
                let end = l
                    .get("end")
                    .and_then(JsonValue::as_usize)
                    .ok_or("label without `end`")?;
                diag.labels.push(Label {
                    span: Span::new(start, end),
                    message: l
                        .get("message")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    primary: l
                        .get("primary")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                });
            }
        }
        if let Some(help) = d.get("help").and_then(JsonValue::as_str) {
            diag.help = Some(help.to_string());
        }
        report.push(diag);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::default();
        r.push(
            Diagnostic::error("M010", "input port `in` of `A` is not connected")
                .primary(Span::new(10, 20), "declared here")
                .secondary(Span::new(2, 5), "workflow starts here")
                .with_help("add a <link/>"),
        );
        r.push(Diagnostic::note("M030", "grouping opportunity"));
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = report_to_json(&r);
        let back = report_from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_rejects_unknown_codes() {
        let json = r#"{"diagnostics":[{"code":"X999","severity":"error","message":"m"}]}"#;
        assert!(report_from_json(json).unwrap_err().contains("X999"));
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = JsonValue::parse(r#"{"a":[1,-2.5,true,null],"b":"x\n\"yA"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"yA"));
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
    }

    #[test]
    fn human_render_draws_carets_into_the_source() {
        let source = "<scufl>\n  <processor name=\"A\"/>\n</scufl>\n";
        let span_start = source.find("<processor").unwrap();
        let span = Span::new(span_start, span_start + "<processor".len());
        let mut r = LintReport::default();
        r.push(
            Diagnostic::error("M008", "service `A` has no binding")
                .primary(span, "declared here")
                .with_help("bind it"),
        );
        let text = render_human(&r, "wf.xml", Some(source));
        assert!(text.contains("error[M008]: service `A` has no binding"));
        assert!(text.contains("--> wf.xml:2:3"));
        assert!(text.contains("<processor name=\"A\"/>"));
        assert!(text.contains("^^^^^^^^^^ declared here"));
        assert!(text.contains("= help: bind it"));
        assert!(text.contains("wf.xml: 1 error"));
    }

    #[test]
    fn human_render_without_source_falls_back_to_offsets() {
        let mut r = LintReport::default();
        r.push(Diagnostic::warning("M011", "w").primary(Span::new(3, 7), "here"));
        let text = render_human(&r, "wf.xml", None);
        assert!(text.contains("@3..7"));
    }

    #[test]
    fn intern_covers_every_emitted_code() {
        assert_eq!(intern_code("M001"), Some("M001"));
        assert_eq!(intern_code("M999"), None);
    }

    /// Regression for the `--json` stability contract: the sorted report
    /// serializes to the *same bytes* regardless of rule execution order,
    /// so CI diffs of lint output never churn.
    #[test]
    fn sorted_json_is_byte_stable_under_push_order() {
        let diags = [
            Diagnostic::note("M030", "grouping opportunity").primary(Span::new(40, 50), "here"),
            Diagnostic::error("M010", "port not connected").primary(Span::new(10, 20), "here"),
            Diagnostic::warning("M020", "dot truncates").primary(Span::new(10, 20), "here"),
            Diagnostic::warning("M011", "port fed twice").primary(Span::new(10, 20), "here"),
            Diagnostic::error("M002", "unreachable"),
        ];
        let mut forward = LintReport::new(diags.to_vec());
        let mut backward = LintReport::new(diags.iter().rev().cloned().collect());
        forward.sort();
        backward.sort();
        let json = report_to_json(&forward);
        assert_eq!(json.as_bytes(), report_to_json(&backward).as_bytes());
        // Span, then severity (errors first), then code — the documented order.
        let codes: Vec<&str> = forward.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["M002", "M010", "M011", "M020", "M030"]);
    }
}
