//! Run results and per-invocation traces.

use crate::ft::{QuarantineEntry, WorkflowReport};
use crate::token::{DataIndex, Token};
use moteur_gridsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Timing of one fired invocation, for diagrams and analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    pub processor: String,
    pub index: DataIndex,
    /// When the enactor fired it.
    pub submitted: SimTime,
    /// When execution actually started (after grid overhead).
    pub started: SimTime,
    pub finished: SimTime,
    /// Enactor-level retries performed for this invocation.
    pub retries: u32,
}

impl InvocationRecord {
    pub fn duration(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }
}

/// Outcome of a workflow enactment.
#[derive(Debug)]
pub struct WorkflowResult {
    /// Tokens collected by each sink, keyed by sink name, in arrival
    /// order. In streaming mode
    /// ([`crate::EnactorConfig::port_capacity`]) only the first
    /// `port_capacity` tokens per sink are retained as a sample;
    /// `sink_counts` carries the full tally.
    pub sink_outputs: HashMap<String, Vec<Token>>,
    /// Total number of tokens each sink received — exact in every
    /// mode, even when `sink_outputs` is truncated by streaming.
    pub sink_counts: HashMap<String, usize>,
    /// Total execution time (Σ of the paper's model).
    pub makespan: SimDuration,
    /// One record per fired invocation, in completion order.
    pub invocations: Vec<InvocationRecord>,
    /// Number of jobs submitted to the backend (the paper's job
    /// counts: 72/396/756 ungrouped, fewer with JG).
    pub jobs_submitted: usize,
    /// Stage-in + stage-out bytes committed to the grid across every
    /// submitted attempt (retries and replicas transfer again). The
    /// timeline's per-link byte series sum to exactly this.
    pub bytes_transferred: u64,
    /// Data items quarantined under `continue_on_error` instead of
    /// aborting the workflow. Empty on a fully successful run.
    pub quarantined: Vec<QuarantineEntry>,
}

impl WorkflowResult {
    /// Tokens a named sink received.
    pub fn sink(&self, name: &str) -> &[Token] {
        self.sink_outputs.get(name).map_or(&[], Vec::as_slice)
    }

    /// How many tokens a named sink received in total (exact even in
    /// streaming mode, where [`WorkflowResult::sink`] is a sample).
    pub fn sink_count(&self, name: &str) -> usize {
        self.sink_counts.get(name).copied().unwrap_or(0)
    }

    /// True when no data item was quarantined.
    pub fn ok(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Summarise the run as a [`WorkflowReport`] (per-item outcomes,
    /// JSON-renderable, exit-code-bearing).
    pub fn report(&self) -> WorkflowReport {
        WorkflowReport {
            completed_invocations: self.invocations.len(),
            jobs_submitted: self.jobs_submitted,
            makespan_secs: self.makespan.as_secs_f64(),
            quarantined: self.quarantined.clone(),
        }
    }

    /// Invocation records of one processor, sorted by data index.
    pub fn invocations_of(&self, processor: &str) -> Vec<&InvocationRecord> {
        let mut v: Vec<&InvocationRecord> = self
            .invocations
            .iter()
            .filter(|r| r.processor == processor)
            .collect();
        v.sort_by(|a, b| a.index.cmp(&b.index));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataValue;

    #[test]
    fn record_duration() {
        let r = InvocationRecord {
            processor: "p".into(),
            index: DataIndex::single(0),
            submitted: SimTime::from_secs_f64(5.0),
            started: SimTime::from_secs_f64(8.0),
            finished: SimTime::from_secs_f64(15.0),
            retries: 0,
        };
        assert_eq!(r.duration(), SimDuration::from_secs(10));
    }

    #[test]
    fn result_sink_and_filtering() {
        let mut sink_outputs = HashMap::new();
        sink_outputs.insert(
            "accuracy".to_string(),
            vec![Token::from_source("s", 0, DataValue::from(1.0))],
        );
        let r = WorkflowResult {
            sink_counts: sink_outputs
                .iter()
                .map(|(k, v)| (k.clone(), v.len()))
                .collect(),
            sink_outputs,
            makespan: SimDuration::from_secs(1),
            invocations: vec![
                InvocationRecord {
                    processor: "b".into(),
                    index: DataIndex::single(1),
                    submitted: SimTime::ZERO,
                    started: SimTime::ZERO,
                    finished: SimTime::ZERO,
                    retries: 0,
                },
                InvocationRecord {
                    processor: "b".into(),
                    index: DataIndex::single(0),
                    submitted: SimTime::ZERO,
                    started: SimTime::ZERO,
                    finished: SimTime::ZERO,
                    retries: 0,
                },
            ],
            jobs_submitted: 2,
            bytes_transferred: 0,
            quarantined: vec![],
        };
        assert!(r.ok());
        let report = r.report();
        assert_eq!(report.completed_invocations, 2);
        assert!(report.ok());
        assert_eq!(r.sink("accuracy").len(), 1);
        assert_eq!(r.sink_count("accuracy"), 1);
        assert_eq!(r.sink_count("missing"), 0);
        assert!(r.sink("missing").is_empty());
        let of_b = r.invocations_of("b");
        assert_eq!(of_b.len(), 2);
        assert!(of_b[0].index < of_b[1].index, "sorted by index");
    }
}
