//! Tests of the §5.4 future-work feature: data batching — submitting
//! several invocations of a single service as one grid job, trading
//! data parallelism against per-job overhead.

use moteur::prelude::*;
use moteur_gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn descriptor(name: &str) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    }
}

fn single_service_workflow(compute: f64) -> Workflow {
    let mut wf = Workflow::new("batch");
    let src = wf.add_source("data");
    let svc = wf.add_service(
        "process",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(descriptor("process"), ServiceProfile::new(compute)),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", svc, "in").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();
    wf
}

fn inputs(n: usize) -> InputData {
    InputData::new().set(
        "data",
        (0..n)
            .map(|j| DataValue::File {
                gfn: format!("gfn://d/{j}"),
                bytes: 100,
            })
            .collect(),
    )
}

/// Grid with a fixed 100 s per-job overhead and no noise.
fn overhead_grid() -> GridConfig {
    GridConfig {
        ces: vec![CeConfig::new("ce", 1000, 1.0)],
        submission_overhead: Distribution::Constant(50.0),
        match_delay: Distribution::Constant(50.0),
        notify_delay: Distribution::Constant(0.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig {
            transfer_latency: 0.0,
            bandwidth: f64::INFINITY,
            congestion: 0.0,
        },
        typical_job_duration: 100.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

#[test]
fn batching_reduces_job_count_and_preserves_results() {
    let wf = single_service_workflow(10.0);
    let data = inputs(12);
    let mut b1 = SimBackend::new(overhead_grid(), 1);
    let plain = run(&wf, &data, EnactorConfig::sp_dp(), &mut b1).unwrap();
    let mut b2 = SimBackend::new(overhead_grid(), 1);
    let batched = run(&wf, &data, EnactorConfig::sp_dp().with_batching(4), &mut b2).unwrap();
    assert_eq!(plain.jobs_submitted, 12);
    assert_eq!(batched.jobs_submitted, 3, "12 data / batch 4");
    assert_eq!(plain.sink("sink").len(), batched.sink("sink").len());
    // Every result token still has its own index and provenance.
    let mut indices: Vec<_> = batched
        .sink("sink")
        .iter()
        .map(|t| t.index.clone())
        .collect();
    indices.sort();
    indices.dedup();
    assert_eq!(indices.len(), 12);
}

#[test]
fn batching_trades_overhead_against_parallelism() {
    // Constant 100 s overhead, 10 s compute, 12 data, sequential-within
    // batch: batch g costs 100 + 10·g; with unlimited slots makespan is
    // one batch's cost. g=1 → 110; g=12 → 220; g=3 → 130.
    let wf = single_service_workflow(10.0);
    let data = inputs(12);
    let time_at = |g: usize| -> f64 {
        let mut backend = SimBackend::new(overhead_grid(), 1);
        run(
            &wf,
            &data,
            EnactorConfig::sp_dp().with_batching(g),
            &mut backend,
        )
        .unwrap()
        .makespan
        .as_secs_f64()
    };
    assert!((time_at(1) - 110.0).abs() < 1e-6, "{}", time_at(1));
    assert!((time_at(3) - 130.0).abs() < 1e-6, "{}", time_at(3));
    assert!((time_at(12) - 220.0).abs() < 1e-6, "{}", time_at(12));
}

#[test]
fn batching_wins_when_the_sequential_baseline_pays_overhead_per_job() {
    // With DP off (one job at a time), batching strictly helps: the
    // overhead is paid once per batch instead of once per datum.
    let wf = single_service_workflow(10.0);
    let data = inputs(12);
    let time_at = |g: usize| -> f64 {
        let mut backend = SimBackend::new(overhead_grid(), 1);
        run(
            &wf,
            &data,
            EnactorConfig::nop().with_batching(g),
            &mut backend,
        )
        .unwrap()
        .makespan
        .as_secs_f64()
    };
    // g=1: 12 × 110 = 1320. g=4: 3 × 140 = 420. g=12: 220.
    assert!((time_at(1) - 1320.0).abs() < 1e-6);
    assert!((time_at(4) - 420.0).abs() < 1e-6);
    assert!((time_at(12) - 220.0).abs() < 1e-6);
}

#[test]
fn batched_jobs_failures_retry_the_whole_batch() {
    let mut grid = overhead_grid();
    grid.failure_probability = 0.4;
    grid.max_retries = 0; // enactor-level retries only
    let wf = single_service_workflow(5.0);
    let data = inputs(9);
    let mut backend = SimBackend::new(grid, 3);
    let result = run(
        &wf,
        &data,
        EnactorConfig::sp_dp().with_batching(3),
        &mut backend,
    )
    .unwrap();
    assert_eq!(
        result.sink("sink").len(),
        9,
        "all data processed despite failures"
    );
    assert!(
        result.invocations.iter().any(|r| r.retries > 0),
        "some batch retried"
    );
}

#[test]
fn local_services_are_never_batched() {
    let double = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        Ok(vec![(
            "out".into(),
            DataValue::from(inputs[0].value.as_num().unwrap() * 2.0),
        )])
    };
    let mut wf = Workflow::new("local");
    let src = wf.add_source("data");
    let svc = wf.add_service("dbl", &["in"], &["out"], ServiceBinding::local(double));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", svc, "in").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();
    let data = InputData::new().set("data", (0..6).map(|i| DataValue::from(i as f64)).collect());
    let mut backend = VirtualBackend::new();
    let r = run(
        &wf,
        &data,
        EnactorConfig::sp_dp().with_batching(3),
        &mut backend,
    )
    .unwrap();
    assert_eq!(
        r.jobs_submitted, 6,
        "each local call remains its own invocation"
    );
    assert_eq!(r.sink("sink").len(), 6);
}

#[test]
fn batching_composes_with_job_grouping() {
    // Chain A→B grouped into one virtual service, then batched 2-wide:
    // 8 data → 4 jobs, each carrying 2 grouped invocations.
    let mut wf = Workflow::new("jg+batch");
    let src = wf.add_source("data");
    let a = wf.add_service(
        "A",
        &["in"],
        &["mid"],
        ServiceBinding::descriptor(
            {
                let mut d = descriptor("A");
                d.outputs[0].name = "mid".into();
                d
            },
            ServiceProfile::new(10.0),
        ),
    );
    let b = wf.add_service(
        "B",
        &["mid"],
        &["out"],
        ServiceBinding::descriptor(
            {
                let mut d = descriptor("B");
                d.inputs[0].name = "mid".into();
                d
            },
            ServiceProfile::new(10.0),
        ),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", a, "in").unwrap();
    wf.connect(a, "mid", b, "mid").unwrap();
    wf.connect(b, "out", sink, "in").unwrap();

    let data = inputs(8);
    let mut backend = SimBackend::new(overhead_grid(), 1);
    let cfg = EnactorConfig::sp_dp_jg().with_batching(2);
    let r = run(&wf, &data, cfg, &mut backend).unwrap();
    assert_eq!(r.jobs_submitted, 4, "8 data / (2 per batch), A+B fused");
    assert_eq!(r.sink("sink").len(), 8);
}
