//! Functional tests of the enactor's service-based features: iteration
//! strategies end-to-end, synchronization barriers (§2.3), optimization
//! loops (Fig. 2), provenance-based pairing under out-of-order
//! completion (§3.3/§4.1), coordination constraints, job grouping
//! equivalence (§3.6) and failure recovery.

use moteur::prelude::*;
use moteur_gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn descriptor(name: &str, inputs: &[&str], outputs: &[&str]) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: inputs
            .iter()
            .map(|i| InputSlot {
                name: i.to_string(),
                option: format!("-{i}"),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            })
            .collect(),
        outputs: outputs
            .iter()
            .map(|o| OutputSlot {
                name: o.to_string(),
                option: format!("-{o}"),
                access: AccessMethod::Gfn,
            })
            .collect(),
        sandboxes: vec![],
        nondeterministic: false,
    }
}

fn dsvc(name: &str, inputs: &[&str], outputs: &[&str], secs: f64) -> ServiceBinding {
    ServiceBinding::descriptor(descriptor(name, inputs, outputs), ServiceProfile::new(secs))
}

fn file_inputs(n: usize, prefix: &str) -> Vec<DataValue> {
    (0..n)
        .map(|j| DataValue::File {
            gfn: format!("gfn://{prefix}/{j}"),
            bytes: 1000,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Iteration strategies end to end
// ---------------------------------------------------------------------

#[test]
fn dot_product_workflow_produces_min_n_m_results() {
    let mut wf = Workflow::new("dot");
    let a = wf.add_source("A");
    let b = wf.add_source("B");
    let svc = wf.add_service(
        "pair",
        &["x", "y"],
        &["out"],
        dsvc("pair", &["x", "y"], &["out"], 1.0),
    );
    let sink = wf.add_sink("sink");
    wf.connect(a, "out", svc, "x").unwrap();
    wf.connect(b, "out", svc, "y").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();

    let inputs = InputData::new()
        .set("A", file_inputs(5, "a"))
        .set("B", file_inputs(3, "b"));
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    assert_eq!(r.sink("sink").len(), 3, "dot: min(5, 3)");
    assert_eq!(r.jobs_submitted, 3);
}

#[test]
fn cross_product_workflow_produces_n_times_m_results() {
    let mut wf = Workflow::new("cross");
    let a = wf.add_source("A");
    let b = wf.add_source("B");
    let svc = wf.add_service(
        "combine",
        &["x", "y"],
        &["out"],
        dsvc("combine", &["x", "y"], &["out"], 1.0),
    );
    wf.set_iteration(svc, IterationStrategy::Cross);
    let sink = wf.add_sink("sink");
    wf.connect(a, "out", svc, "x").unwrap();
    wf.connect(b, "out", svc, "y").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();

    let inputs = InputData::new()
        .set("A", file_inputs(4, "a"))
        .set("B", file_inputs(3, "b"));
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    assert_eq!(r.sink("sink").len(), 12, "cross: 4 × 3");
    // All index pairs distinct and two-dimensional.
    let mut seen = std::collections::HashSet::new();
    for t in r.sink("sink") {
        assert_eq!(t.index.depth(), 2);
        assert!(seen.insert(t.index.clone()));
    }
}

// ---------------------------------------------------------------------
// Provenance under out-of-order completion (the causality problem)
// ---------------------------------------------------------------------

#[test]
fn dot_pairing_is_correct_when_branches_complete_out_of_order() {
    // Branch A is slow for early indices, branch B slow for late ones,
    // so with DP the two streams complete in opposite orders. The dot
    // join must still pair A_j with B_j.
    let mut wf = Workflow::new("causality");
    let src = wf.add_source("imgs");
    let nd = 6u32;
    let slow_early = CostModel::by_index(move |idx| (nd - idx.0[0]) as f64 * 5.0);
    let slow_late = CostModel::by_index(|idx| (idx.0[0] + 1) as f64 * 5.0);
    let a = wf.add_service(
        "A",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(
            descriptor("A", &["in"], &["out"]),
            ServiceProfile::new(0.0).with_cost(slow_early),
        ),
    );
    let b = wf.add_service(
        "B",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(
            descriptor("B", &["in"], &["out"]),
            ServiceProfile::new(0.0).with_cost(slow_late),
        ),
    );
    let join = wf.add_service(
        "join",
        &["x", "y"],
        &["out"],
        dsvc("join", &["x", "y"], &["out"], 1.0),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", a, "in").unwrap();
    wf.connect(src, "out", b, "in").unwrap();
    wf.connect(a, "out", join, "x").unwrap();
    wf.connect(b, "out", join, "y").unwrap();
    wf.connect(join, "out", sink, "in").unwrap();

    let inputs = InputData::new().set("imgs", file_inputs(nd as usize, "img"));
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    assert_eq!(r.sink("sink").len(), nd as usize);
    for t in r.sink("sink") {
        // The history tree must show both inputs deriving from the
        // *same* source position (correct dot pairing).
        let sources = t.history.sources();
        assert_eq!(sources.len(), 2, "join of A and B branches");
        assert_eq!(
            sources[0].1, sources[1].1,
            "A_j paired with B_j: {sources:?}"
        );
        assert!(t.history.involves("A") && t.history.involves("B") && t.history.involves("join"));
    }
}

// ---------------------------------------------------------------------
// Synchronization barriers
// ---------------------------------------------------------------------

#[test]
fn synchronization_processor_fires_once_with_whole_streams() {
    // source → double → mean(sync) → sink, with local services.
    let double = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        Ok(vec![(
            "out".into(),
            DataValue::from(inputs[0].value.as_num().unwrap() * 2.0),
        )])
    };
    let mean = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let list = inputs[0].value.as_list().ok_or("expected a list")?;
        let sum: f64 = list.iter().map(|v| v.as_num().unwrap()).sum();
        Ok(vec![(
            "out".into(),
            DataValue::from(sum / list.len() as f64),
        )])
    };
    let mut wf = Workflow::new("sync");
    let src = wf.add_source("nums");
    let d = wf.add_service("double", &["in"], &["out"], ServiceBinding::local(double));
    let m = wf.add_service("mean", &["values"], &["out"], ServiceBinding::local(mean));
    wf.set_synchronization(m, true);
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", d, "in").unwrap();
    wf.connect(d, "out", m, "values").unwrap();
    wf.connect(m, "out", sink, "in").unwrap();

    let inputs = InputData::new().set("nums", vec![1.0.into(), 2.0.into(), 3.0.into(), 4.0.into()]);
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    let out = r.sink("sink");
    assert_eq!(out.len(), 1, "a barrier produces a single result");
    assert_eq!(out[0].value.as_num(), Some(5.0), "mean of 2,4,6,8");
    assert_eq!(r.invocations_of("mean").len(), 1);
    // The barrier started only after every `double` finished.
    let last_double = r
        .invocations_of("double")
        .iter()
        .map(|i| i.finished)
        .max()
        .unwrap();
    assert!(r.invocations_of("mean")[0].submitted >= last_double);
}

#[test]
fn descriptor_bound_barrier_runs_on_grid_backend() {
    // The Bronze-Standard MultiTransfoTest pattern: grid services then a
    // grid barrier consuming all results.
    let mut wf = Workflow::new("gridsync");
    let src = wf.add_source("imgs");
    let reg = wf.add_service(
        "register",
        &["in"],
        &["trf"],
        dsvc("register", &["in"], &["trf"], 30.0),
    );
    let test = wf.add_service(
        "test",
        &["trfs"],
        &["report"],
        dsvc("test", &["trfs"], &["report"], 10.0),
    );
    wf.set_synchronization(test, true);
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", reg, "in").unwrap();
    wf.connect(reg, "trf", test, "trfs").unwrap();
    wf.connect(test, "report", sink, "in").unwrap();

    let inputs = InputData::new().set("imgs", file_inputs(5, "img"));
    let mut backend = SimBackend::new(GridConfig::ideal(), 1);
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    assert_eq!(r.sink("sink").len(), 1);
    assert_eq!(r.jobs_submitted, 6, "5 registrations + 1 barrier job");
    // Ideal grid: barrier starts at 30s (after all registers), ends 40s.
    assert!(
        (r.makespan.as_secs_f64() - 40.0).abs() < 1e-6,
        "{:?}",
        r.makespan
    );
}

// ---------------------------------------------------------------------
// Optimization loops (Fig. 2)
// ---------------------------------------------------------------------

#[test]
fn fig2_loop_iterates_until_runtime_convergence() {
    // P1 initialises a counter; P2 increments; P3 routes to `again`
    // until the counter reaches a threshold that depends on the datum.
    let init = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        Ok(vec![(
            "out".into(),
            DataValue::from(inputs[0].value.as_num().unwrap()),
        )])
    };
    let incr = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        Ok(vec![(
            "out".into(),
            DataValue::from(inputs[0].value.as_num().unwrap() + 1.0),
        )])
    };
    let check = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let v = inputs[0].value.as_num().unwrap();
        if v >= 5.0 {
            Ok(vec![("done".into(), DataValue::from(v))])
        } else {
            Ok(vec![("again".into(), DataValue::from(v))])
        }
    };
    let mut wf = Workflow::new("fig2");
    let src = wf.add_source("source");
    let p1 = wf.add_service("P1", &["in"], &["out"], ServiceBinding::local(init));
    let p2 = wf.add_service("P2", &["in"], &["out"], ServiceBinding::local(incr));
    let p3 = wf.add_service(
        "P3",
        &["in"],
        &["again", "done"],
        ServiceBinding::local(check),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p1, "in").unwrap();
    wf.connect(p1, "out", p2, "in").unwrap();
    wf.connect(p2, "out", p3, "in").unwrap();
    wf.connect(p3, "again", p2, "in").unwrap();
    wf.connect(p3, "done", sink, "in").unwrap();
    assert!(wf.has_cycle(), "this is the Fig. 2 shape");

    // Data 0 starts at 0 (needs 5 iterations), data 1 at 3 (needs 2).
    let inputs = InputData::new().set("source", vec![0.0.into(), 3.0.into()]);
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    let mut results: Vec<f64> = r
        .sink("sink")
        .iter()
        .map(|t| t.value.as_num().unwrap())
        .collect();
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(results, vec![5.0, 5.0], "both converge to the threshold");
    // Iteration counts decided at run time: 5 + 2 = 7 P2 invocations.
    assert_eq!(r.invocations_of("P2").len(), 7);
    assert_eq!(r.invocations_of("P3").len(), 7);
}

// ---------------------------------------------------------------------
// Coordination constraints
// ---------------------------------------------------------------------

#[test]
fn control_link_orders_independent_services() {
    let mut wf = Workflow::new("control");
    let src = wf.add_source("s");
    let a = wf.add_service("A", &["in"], &["out"], dsvc("A", &["in"], &["out"], 10.0));
    let b = wf.add_service("B", &["in"], &["out"], dsvc("B", &["in"], &["out"], 1.0));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", a, "in").unwrap();
    wf.connect(src, "out", b, "in").unwrap();
    wf.connect(a, "out", sink, "in").unwrap();
    wf.connect(b, "out", sink, "in").unwrap();
    wf.add_control(a, b);

    let inputs = InputData::new().set("s", file_inputs(3, "d"));
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    let a_done = r
        .invocations_of("A")
        .iter()
        .map(|i| i.finished)
        .max()
        .unwrap();
    let b_start = r
        .invocations_of("B")
        .iter()
        .map(|i| i.submitted)
        .min()
        .unwrap();
    assert!(b_start >= a_done, "B must wait for A via the control link");
}

// ---------------------------------------------------------------------
// Job grouping
// ---------------------------------------------------------------------

/// Deterministic grid: constant overheads, one fat CE.
fn quiet_grid() -> GridConfig {
    GridConfig {
        ces: vec![CeConfig::new("ce", 1000, 1.0)],
        submission_overhead: Distribution::Constant(60.0),
        match_delay: Distribution::Constant(60.0),
        notify_delay: Distribution::Constant(0.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig {
            transfer_latency: 5.0,
            bandwidth: 1e6,
            congestion: 0.0,
        },
        typical_job_duration: 100.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

fn two_stage_workflow() -> Workflow {
    let mut wf = Workflow::new("jg");
    let src = wf.add_source("imgs");
    let a = wf.add_service(
        "crestLines",
        &["in"],
        &["crest"],
        dsvc("crestLines", &["in"], &["crest"], 90.0),
    );
    let b = wf.add_service(
        "crestMatch",
        &["crest"],
        &["trf"],
        dsvc("crestMatch", &["crest"], &["trf"], 30.0),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", a, "in").unwrap();
    wf.connect(a, "crest", b, "crest").unwrap();
    wf.connect(b, "trf", sink, "in").unwrap();
    wf
}

#[test]
fn grouping_halves_submissions_and_cuts_overhead() {
    let wf = two_stage_workflow();
    let inputs = InputData::new().set("imgs", file_inputs(4, "img"));

    let mut b1 = SimBackend::new(quiet_grid(), 7);
    let plain = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut b1).unwrap();
    let mut b2 = SimBackend::new(quiet_grid(), 7);
    let grouped = run(&wf, &inputs, EnactorConfig::sp_dp_jg(), &mut b2).unwrap();

    assert_eq!(plain.jobs_submitted, 8, "2 jobs × 4 data");
    assert_eq!(grouped.jobs_submitted, 4, "1 grouped job × 4 data");
    assert_eq!(plain.sink("sink").len(), grouped.sink("sink").len());
    assert!(
        grouped.makespan < plain.makespan,
        "grouping removes one 120 s overhead per datum: {} vs {}",
        grouped.makespan,
        plain.makespan
    );
    // With constant overheads the gain is exactly one submission chain
    // (120 s) plus the elided intermediate transfers.
    let gain = plain.makespan.as_secs_f64() - grouped.makespan.as_secs_f64();
    assert!(gain > 100.0, "gain {gain}");
}

#[test]
fn grouping_preserves_results_and_provenance_shape() {
    let wf = two_stage_workflow();
    let inputs = InputData::new().set("imgs", file_inputs(3, "img"));
    let mut backend = VirtualBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp_jg(), &mut backend).unwrap();
    assert_eq!(r.sink("sink").len(), 3);
    for t in r.sink("sink") {
        // Each result is a file produced by the merged processor.
        let (gfn, _) = t.value.as_file().expect("file output");
        assert!(
            gfn.contains("crestMatch"),
            "exposed output of the last stage: {gfn}"
        );
        assert!(t.history.involves("crestLines+crestMatch"));
    }
}

// ---------------------------------------------------------------------
// Failures
// ---------------------------------------------------------------------

#[test]
fn enactor_resubmits_terminally_failed_grid_jobs() {
    let mut cfg = quiet_grid();
    cfg.failure_probability = 0.4;
    cfg.max_retries = 0; // the *grid* never retries; the enactor must
    let wf = two_stage_workflow();
    let inputs = InputData::new().set("imgs", file_inputs(6, "img"));
    let mut backend = SimBackend::new(cfg, 11);
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    assert_eq!(r.sink("sink").len(), 6, "all results eventually delivered");
    let retried: u32 = r.invocations.iter().map(|i| i.retries).sum();
    assert!(
        retried > 0,
        "with p=0.4 over 12 jobs some retries must happen"
    );
}

#[test]
fn local_service_errors_abort_the_workflow() {
    let bad = |_: &[Token]| -> Result<Vec<(String, DataValue)>, String> { Err("broken".into()) };
    let mut wf = Workflow::new("bad");
    let src = wf.add_source("s");
    let p = wf.add_service("bad", &["in"], &["out"], ServiceBinding::local(bad));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", vec![1.0.into()]);
    let mut backend = VirtualBackend::new();
    let err = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap_err();
    assert!(err.to_string().contains("broken"), "{err}");
}

#[test]
fn missing_source_data_is_reported() {
    let wf = two_stage_workflow();
    let mut backend = VirtualBackend::new();
    let err = run(&wf, &InputData::new(), EnactorConfig::sp_dp(), &mut backend).unwrap_err();
    assert!(
        err.to_string().contains("no input data for source"),
        "{err}"
    );
}

// ---------------------------------------------------------------------
// Local backend end to end
// ---------------------------------------------------------------------

#[test]
fn local_backend_runs_a_real_pipeline_on_threads() {
    let square = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let x = inputs[0].value.as_num().ok_or("not a number")?;
        Ok(vec![("out".into(), DataValue::from(x * x))])
    };
    let negate = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let x = inputs[0].value.as_num().ok_or("not a number")?;
        Ok(vec![("out".into(), DataValue::from(-x))])
    };
    let mut wf = Workflow::new("threads");
    let src = wf.add_source("nums");
    let s = wf.add_service("square", &["in"], &["out"], ServiceBinding::local(square));
    let n = wf.add_service("negate", &["in"], &["out"], ServiceBinding::local(negate));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", s, "in").unwrap();
    wf.connect(s, "out", n, "in").unwrap();
    wf.connect(n, "out", sink, "in").unwrap();

    let inputs = InputData::new().set("nums", (0..20).map(|i| DataValue::from(i as f64)).collect());
    let mut backend = LocalBackend::new();
    let r = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
    let mut got: Vec<f64> = r
        .sink("sink")
        .iter()
        .map(|t| t.value.as_num().unwrap())
        .collect();
    got.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut want: Vec<f64> = (0..20).map(|i| -((i * i) as f64)).collect();
    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(got, want);
}
