//! Event-stream invariants of the observability layer: every run that
//! submits a job must account for it with exactly one terminal event,
//! timestamps must be causally ordered per invocation, metrics must
//! reconcile with the `WorkflowResult`, and observation must never
//! perturb the simulation.

use moteur::prelude::*;
use moteur::{
    chrome_trace, critical_path, run_observed, EventBuffer, JsonlSink, MetricsSink, RingBufferSink,
};
use moteur_gridsim::GridConfig;
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};
use std::sync::{Arc, Mutex};

fn descriptor(name: &str, inputs: &[&str], outputs: &[&str]) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: inputs
            .iter()
            .map(|i| InputSlot {
                name: i.to_string(),
                option: format!("-{i}"),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            })
            .collect(),
        outputs: outputs
            .iter()
            .map(|o| OutputSlot {
                name: o.to_string(),
                option: format!("-{o}"),
                access: AccessMethod::Gfn,
            })
            .collect(),
        sandboxes: vec![],
        nondeterministic: false,
    }
}

fn dsvc(name: &str, inputs: &[&str], outputs: &[&str], secs: f64) -> ServiceBinding {
    ServiceBinding::descriptor(descriptor(name, inputs, outputs), ServiceProfile::new(secs))
}

/// A two-stage pipeline with a branch: src → prep → {left, right} → sink.
fn pipeline() -> (Workflow, InputData) {
    let mut wf = Workflow::new("obs-pipeline");
    let src = wf.add_source("imgs");
    let prep = wf.add_service(
        "prep",
        &["in"],
        &["out"],
        dsvc("prep", &["in"], &["out"], 60.0),
    );
    let left = wf.add_service(
        "left",
        &["in"],
        &["out"],
        dsvc("left", &["in"], &["out"], 120.0),
    );
    let right = wf.add_service(
        "right",
        &["in"],
        &["out"],
        dsvc("right", &["in"], &["out"], 90.0),
    );
    let sink = wf.add_sink("results");
    wf.connect(src, "out", prep, "in").unwrap();
    wf.connect(prep, "out", left, "in").unwrap();
    wf.connect(prep, "out", right, "in").unwrap();
    wf.connect(left, "out", sink, "in").unwrap();
    wf.connect(right, "out", sink, "in").unwrap();
    let inputs = InputData::new().set(
        "imgs",
        (0..6)
            .map(|j| DataValue::File {
                gfn: format!("gfn://img/{j}"),
                bytes: 1000,
            })
            .collect(),
    );
    (wf, inputs)
}

fn run_with_obs(obs: Obs, seed: u64) -> WorkflowResult {
    let (wf, inputs) = pipeline();
    let mut backend = SimBackend::with_obs(GridConfig::egee_2006(), seed, &obs);
    run_observed(
        &wf,
        &inputs,
        EnactorConfig::sp_dp().with_seed(seed),
        &mut backend,
        obs,
    )
    .expect("pipeline completes")
}

fn captured(seed: u64) -> (Vec<TraceEvent>, WorkflowResult) {
    let (sink, buffer): (RingBufferSink, EventBuffer) = RingBufferSink::new(100_000);
    let result = run_with_obs(Obs::new(vec![Box::new(sink)]), seed);
    assert_eq!(
        buffer.dropped(),
        0,
        "ring buffer must not wrap in this test"
    );
    (buffer.snapshot(), result)
}

#[test]
fn every_submitted_job_reaches_exactly_one_terminal_event() {
    let (events, result) = captured(3);
    let submitted: Vec<u64> = events
        .iter()
        .filter(|e| e.kind() == "job_submitted")
        .filter_map(moteur::TraceEvent::invocation)
        .collect();
    assert_eq!(
        submitted.len(),
        result.jobs_submitted,
        "one submission event per job"
    );
    for inv in submitted {
        let terminals = events
            .iter()
            .filter(|e| e.invocation() == Some(inv) && e.is_terminal())
            .count();
        assert_eq!(
            terminals, 1,
            "invocation {inv} must have exactly one terminal event"
        );
    }
    // Grid-side accounting closes too: one delivery per grid submission.
    let grid_subs = events
        .iter()
        .filter(|e| e.kind() == "grid_submitted")
        .count();
    let grid_delivered = events
        .iter()
        .filter(|e| e.kind() == "grid_delivered")
        .count();
    assert_eq!(grid_subs, grid_delivered);
}

#[test]
fn timestamps_are_causally_ordered_per_invocation() {
    let (events, _) = captured(5);
    let invocations: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(moteur::TraceEvent::invocation)
        .collect();
    assert!(!invocations.is_empty());
    for inv in invocations {
        let mine: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.invocation() == Some(inv))
            .collect();
        for pair in mine.windows(2) {
            assert!(
                pair[0].at() <= pair[1].at(),
                "invocation {inv}: {:?} observed after {:?}",
                pair[1],
                pair[0]
            );
        }
        // Input staging happens while the job is composed, so any
        // `edge_staged` events precede the submission that carries them.
        let first_lifecycle = mine.iter().find(|e| e.kind() != "edge_staged");
        assert_eq!(first_lifecycle.map(|e| e.kind()), Some("job_submitted"));
        assert!(mine.last().is_some_and(|e| e.is_terminal()));
    }
}

#[test]
fn metrics_reconcile_with_workflow_result() {
    let (sink, registry): (MetricsSink, Arc<Mutex<moteur::MetricsRegistry>>) = MetricsSink::new();
    let result = run_with_obs(Obs::new(vec![Box::new(sink)]), 7);
    let reg = registry.lock().unwrap();
    assert_eq!(reg.counter("job_submitted") as usize, result.jobs_submitted);
    assert_eq!(
        reg.counter("job_completed") as usize,
        result.jobs_submitted,
        "failure-free seed: every job completes"
    );
    // All in-flight gauges drain back to zero; the total peaked above it.
    let inflight = reg.gauge("inflight_total").expect("gauge exists");
    assert_eq!(inflight.current, 0, "run finished with jobs in flight?");
    assert!(inflight.peak > 0);
    for (name, g) in reg.gauges() {
        if name.starts_with("inflight") {
            assert_eq!(g.current, 0, "{name} did not drain");
        }
    }
    // Grid overhead was observed for every delivered job.
    let overhead = reg
        .histogram("grid_overhead_secs")
        .expect("histogram exists");
    assert_eq!(overhead.count as usize, result.jobs_submitted);
    assert!(overhead.mean() > 0.0, "EGEE overhead is never free");
}

#[test]
fn jsonl_sink_writes_one_parsable_object_per_event() {
    let shared: Arc<Mutex<Vec<u8>>> = Arc::default();
    struct SharedWriter(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let sink = JsonlSink::new(Box::new(SharedWriter(Arc::clone(&shared))));
    let obs = Obs::new(vec![Box::new(sink)]);
    let result = run_with_obs(obs.clone(), 11);
    obs.flush().expect("flush succeeds");
    let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > result.jobs_submitted * 2,
        "lifecycle has many events per job"
    );
    for line in &lines {
        assert!(
            line.starts_with("{\"type\":\""),
            "line is a JSON object: {line}"
        );
        assert!(line.ends_with('}'), "single-line object: {line}");
        assert!(
            line.contains("\"t\":"),
            "every event is timestamped: {line}"
        );
    }
}

#[test]
fn observation_does_not_perturb_the_run() {
    let (wf, inputs) = pipeline();
    let mut blind_backend = SimBackend::new(GridConfig::egee_2006(), 13);
    let blind = run(
        &wf,
        &inputs,
        EnactorConfig::sp_dp().with_seed(13),
        &mut blind_backend,
    )
    .expect("pipeline completes");
    let (sink, _buffer) = RingBufferSink::new(100_000);
    let observed = run_with_obs(Obs::new(vec![Box::new(sink)]), 13);
    assert_eq!(
        blind.makespan, observed.makespan,
        "observation changed the clock"
    );
    assert_eq!(blind.jobs_submitted, observed.jobs_submitted);
    assert_eq!(blind.invocations.len(), observed.invocations.len());
}

/// A tiny fully-deterministic run for byte-reproducibility checks:
/// constant-cost services on the ideal grid (constant overheads, no
/// failures), so every timestamp is the same on every execution.
fn deterministic_result() -> WorkflowResult {
    let mut wf = Workflow::new("golden");
    let src = wf.add_source("in");
    let a = wf.add_service("A", &["in"], &["out"], dsvc("A", &["in"], &["out"], 30.0));
    let b = wf.add_service("B", &["in"], &["out"], dsvc("B", &["in"], &["out"], 45.0));
    let sink = wf.add_sink("out");
    wf.connect(src, "out", a, "in").unwrap();
    wf.connect(a, "out", b, "in").unwrap();
    wf.connect(b, "out", sink, "in").unwrap();
    let inputs = InputData::new().set(
        "in",
        (0..3)
            .map(|j| DataValue::File {
                gfn: format!("gfn://golden/{j}"),
                bytes: 100,
            })
            .collect(),
    );
    let mut backend = SimBackend::new(GridConfig::ideal(), 1);
    run(
        &wf,
        &inputs,
        EnactorConfig::sp_dp().with_seed(1),
        &mut backend,
    )
    .expect("golden workflow completes")
}

#[test]
fn chrome_trace_is_byte_reproducible_and_matches_the_golden_file() {
    let first = chrome_trace(&deterministic_result());
    let second = chrome_trace(&deterministic_result());
    assert_eq!(first, second, "two identical runs must serialise equally");

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("MOTEUR_BLESS").is_some() {
        std::fs::write(golden_path, &first).expect("write golden file");
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file committed (regenerate with MOTEUR_BLESS=1)");
    assert_eq!(
        first, golden,
        "chrome export changed; if intentional, regenerate with \
         MOTEUR_BLESS=1 cargo test -p moteur --test obs"
    );
}

#[test]
fn span_sink_reconstructs_the_grid_lifecycle_of_a_real_run() {
    let (sink, spans) = moteur::SpanSink::new();
    let result = run_with_obs(Obs::new(vec![Box::new(sink)]), 19);
    let tree = spans.snapshot();
    let root = tree.roots().next().expect("workflow root span");
    assert_eq!(
        tree.roots().count(),
        1,
        "exactly one workflow root: {}",
        tree.render()
    );
    // Root covers the run: its duration matches the makespan shape
    // (first event to last terminal).
    assert!(root.end.is_some(), "root closed");
    // One item span per submitted job, each fully phased.
    let items: Vec<&moteur::Span> = tree
        .spans()
        .iter()
        .filter(|s| s.kind == moteur::SpanKind::DataItem)
        .collect();
    assert_eq!(items.len(), result.jobs_submitted);
    for item in &items {
        assert!(item.end.is_some(), "item {} left open", item.name);
        let phases: Vec<&'static str> = tree.children(item.id).map(|p| p.kind.name()).collect();
        // Every lifecycle starts with a submission and ends with the
        // transfer; failed attempts splice extra scheduling/queuing/
        // execution phases in between, so require coverage, not an
        // exact sequence.
        assert_eq!(phases.first(), Some(&"submission"), "{phases:?}");
        assert_eq!(phases.last(), Some(&"transfer"), "{phases:?}");
        for required in ["scheduling", "queuing", "execution"] {
            assert!(
                phases.contains(&required),
                "item {} missing {required}: {phases:?}",
                item.name
            );
        }
    }
    // Phase totals agree with the metrics-layer overhead definition:
    // submission+scheduling+queuing+transfer is the non-execution part.
    let durations = tree.phase_durations();
    assert!(
        durations["execution"].0 as usize >= result.jobs_submitted,
        "at least one execution per job (retries add more)"
    );
    assert!(tree.overhead_secs() > 0.0, "EGEE overhead is never free");
}

#[test]
fn chrome_trace_and_critical_path_cover_the_run() {
    let (_, result) = captured(17);
    let trace = chrome_trace(&result);
    let exec_spans = trace.matches("\"cat\":\"exec\"").count();
    assert_eq!(
        exec_spans,
        result.invocations.len(),
        "one exec span per invocation"
    );
    assert!(trace.contains("\"displayTimeUnit\":\"ms\""));
    let cp = critical_path(&result);
    assert!(cp.makespan_secs > 0.0);
    assert!(!cp.steps.is_empty());
    assert!(cp.coverage() > 0.0 && cp.coverage() <= 1.0 + 1e-9);
}
