//! E7 — the enactor must reproduce the theoretical model of paper §3.5
//! *exactly* on an ideal backend: a linear chain of `n_W` services over
//! `n_D` data sets with declared durations `T[i][j]` yields makespans
//! equal to eqs. (1)–(4) under the corresponding configuration.

use moteur::prelude::*;
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn pass_through_descriptor(name: &str) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    }
}

/// Linear chain: source → S0 → … → S{nW−1} → sink, service `i` taking
/// `t.get(i, j)` seconds on data set `j`.
fn chain_workflow(t: &TimeMatrix) -> Workflow {
    let mut wf = Workflow::new("chain");
    let src = wf.add_source("source");
    let mut prev = (src, "out".to_string());
    for i in 0..t.n_services() {
        let row: Vec<f64> = (0..t.n_data()).map(|j| t.get(i, j)).collect();
        let cost = CostModel::by_index(move |idx| row[idx.0[0] as usize]);
        let svc = wf.add_service(
            format!("S{i}").as_str(),
            &["in"],
            &["out"],
            ServiceBinding::descriptor(
                pass_through_descriptor(&format!("S{i}")),
                ServiceProfile::new(0.0).with_cost(cost),
            ),
        );
        wf.connect(prev.0, &prev.1, svc, "in").unwrap();
        prev = (svc, "out".to_string());
    }
    let sink = wf.add_sink("sink");
    wf.connect(prev.0, &prev.1, sink, "in").unwrap();
    wf
}

fn inputs_for(t: &TimeMatrix) -> InputData {
    InputData::new().set(
        "source",
        (0..t.n_data())
            .map(|j| DataValue::File {
                gfn: format!("gfn://in/{j}"),
                bytes: 0,
            })
            .collect(),
    )
}

fn enact(t: &TimeMatrix, config: EnactorConfig) -> WorkflowResult {
    let wf = chain_workflow(t);
    let mut backend = VirtualBackend::new();
    run(&wf, &inputs_for(t), config, &mut backend).expect("enactment succeeds")
}

fn assert_close(measured: f64, expected: f64, what: &str) {
    assert!(
        (measured - expected).abs() < 1e-5,
        "{what}: measured {measured}, model {expected}"
    );
}

#[test]
fn sequential_matches_eq1() {
    let t = TimeMatrix::from_fn(3, 4, |i, j| 1.0 + (i * 7 + j * 3) as f64);
    let r = enact(&t, EnactorConfig::nop());
    assert_close(r.makespan.as_secs_f64(), t.sigma_sequential(), "NOP");
    assert_eq!(r.jobs_submitted, 12);
    assert_eq!(r.sink("sink").len(), 4);
}

#[test]
fn data_parallel_matches_eq2() {
    let t = TimeMatrix::from_fn(3, 5, |i, j| 2.0 + ((i + 2 * j) % 4) as f64);
    let r = enact(&t, EnactorConfig::dp());
    assert_close(r.makespan.as_secs_f64(), t.sigma_dp(), "DP");
}

#[test]
fn service_parallel_matches_eq3() {
    let t = TimeMatrix::from_fn(4, 6, |i, j| 1.0 + ((3 * i + 5 * j) % 7) as f64);
    let r = enact(&t, EnactorConfig::sp());
    assert_close(r.makespan.as_secs_f64(), t.sigma_sp(), "SP");
}

#[test]
fn data_and_service_parallel_matches_eq4() {
    let t = TimeMatrix::from_fn(4, 6, |i, j| 1.0 + ((i * 11 + j * 13) % 9) as f64);
    let r = enact(&t, EnactorConfig::sp_dp());
    assert_close(r.makespan.as_secs_f64(), t.sigma_dsp(), "DSP");
}

#[test]
fn constant_time_speedups_match_section_354() {
    // nW = 5, nD = 12 (the paper's application shape at its smallest).
    let (nw, nd) = (5, 12);
    let t = TimeMatrix::constant(nw, nd, 10.0);
    let seq = enact(&t, EnactorConfig::nop()).makespan.as_secs_f64();
    let dp = enact(&t, EnactorConfig::dp()).makespan.as_secs_f64();
    let sp = enact(&t, EnactorConfig::sp()).makespan.as_secs_f64();
    let dsp = enact(&t, EnactorConfig::sp_dp()).makespan.as_secs_f64();
    assert_close(
        seq / dp,
        moteur::model::speedup_dp_constant(nd),
        "S_DP = nD",
    );
    assert_close(seq / sp, moteur::model::speedup_sp_constant(nw, nd), "S_SP");
    assert_close(
        sp / dsp,
        moteur::model::speedup_dp_given_sp_constant(nw, nd),
        "S_DSP",
    );
    assert_close(
        dp / dsp,
        1.0,
        "SP adds nothing under constant T when DP is on",
    );
}

#[test]
fn fig6_variable_times_make_sp_beneficial_even_with_dp() {
    // The Fig. 6 scenario: D0 slow on P1, D1 slow on P2.
    let t = TimeMatrix::new(vec![
        vec![2.0, 1.0, 1.0],
        vec![1.0, 3.0, 1.0],
        vec![1.0, 1.0, 1.0],
    ]);
    let dp = enact(&t, EnactorConfig::dp()).makespan.as_secs_f64();
    let dsp = enact(&t, EnactorConfig::sp_dp()).makespan.as_secs_f64();
    assert_close(dp, 6.0, "Σ_DP");
    assert_close(dsp, 5.0, "Σ_DSP");
    assert!(
        dsp < dp,
        "service parallelism must help under variable times"
    );
}

#[test]
fn massively_data_parallel_single_service() {
    let t = TimeMatrix::new(vec![vec![3.0, 9.0, 4.0, 2.0]]);
    assert_close(
        enact(&t, EnactorConfig::dp()).makespan.as_secs_f64(),
        9.0,
        "max_j",
    );
    assert_close(
        enact(&t, EnactorConfig::sp()).makespan.as_secs_f64(),
        18.0,
        "SP useless when nW = 1",
    );
}

#[test]
fn non_data_intensive_single_datum() {
    let t = TimeMatrix::new(vec![vec![2.0], vec![5.0], vec![1.0]]);
    for config in EnactorConfig::table1_configurations() {
        if config.job_grouping {
            continue; // grouping changes the chain itself
        }
        let r = enact(&t, config);
        assert_close(r.makespan.as_secs_f64(), 8.0, config.label());
    }
}

/// The enactor equals the model on pseudo-random matrices, for all four
/// parallelism configurations. Deterministic seeded sweep over every
/// (nW, nD) shape (no external property-testing dependency: the
/// workspace builds offline).
#[test]
fn enactor_equals_model_on_random_matrices() {
    for nw in 1usize..5 {
        for nd in 1usize..7 {
            for seed in [0u64, 97, 491, 999] {
                let t = TimeMatrix::from_fn(nw, nd, |i, j| {
                    1.0 + ((seed as usize * 31 + i * 17 + j * 7) % 23) as f64
                });
                let check = |measured: f64, expected: f64, what: &str| {
                    assert!(
                        (measured - expected).abs() < 1e-5,
                        "{what} at nw={nw} nd={nd} seed={seed}: {measured} vs {expected}"
                    );
                };
                check(
                    enact(&t, EnactorConfig::nop()).makespan.as_secs_f64(),
                    t.sigma_sequential(),
                    "NOP",
                );
                check(
                    enact(&t, EnactorConfig::dp()).makespan.as_secs_f64(),
                    t.sigma_dp(),
                    "DP",
                );
                check(
                    enact(&t, EnactorConfig::sp()).makespan.as_secs_f64(),
                    t.sigma_sp(),
                    "SP",
                );
                check(
                    enact(&t, EnactorConfig::sp_dp()).makespan.as_secs_f64(),
                    t.sigma_dsp(),
                    "DSP",
                );
            }
        }
    }
}

/// Faster configurations never lose: the partial order of §3.5 holds
/// for every seeded matrix.
#[test]
fn optimizations_never_slow_down() {
    for seed in 0u64..32 {
        let t = TimeMatrix::from_fn(3, 5, |i, j| {
            1.0 + ((seed as usize * 13 + i * 5 + j * 11) % 17) as f64
        });
        let seq = enact(&t, EnactorConfig::nop()).makespan.as_secs_f64();
        let dp = enact(&t, EnactorConfig::dp()).makespan.as_secs_f64();
        let sp = enact(&t, EnactorConfig::sp()).makespan.as_secs_f64();
        let dsp = enact(&t, EnactorConfig::sp_dp()).makespan.as_secs_f64();
        assert!(dp <= seq + 1e-9, "seed {seed}");
        assert!(sp <= seq + 1e-9, "seed {seed}");
        assert!(dsp <= dp + 1e-9, "seed {seed}");
        assert!(dsp <= sp + 1e-9, "seed {seed}");
    }
}
