//! Property-style tests of the provenance machinery the data manager
//! keys on: `history_to_xml`/`history_from_xml` must round-trip
//! arbitrarily deep and wide trees exactly, and provenance/invocation
//! keys must be functions of *structure*, not of construction order,
//! sharing, or token arrival order.

use moteur::{
    history_from_xml, history_to_xml, invocation_key, provenance_key, run_cached, DataStore,
    DataValue, EnactorConfig, History, InputData, Obs, ServiceBinding, ServiceProfile, SimBackend,
    StoreConfig, Workflow,
};
use moteur_gridsim::GridConfig;
use moteur_wrapper::crest_lines_example;
use std::sync::Arc;

/// Tiny deterministic LCG so the "random" trees are reproducible
/// without an external crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_tree(rng: &mut Lcg, depth: usize) -> Arc<History> {
    if depth == 0 || rng.below(4) == 0 {
        return History::source(format!("s{}", rng.below(5)), rng.below(100) as u32);
    }
    let n_children = 1 + rng.below(3) as usize;
    let inputs = (0..n_children)
        .map(|_| random_tree(rng, depth - 1))
        .collect();
    History::derived(format!("p{}", rng.below(7)), inputs)
}

fn round_trips(history: &Arc<History>) {
    let el = history_to_xml(history);
    let back = history_from_xml(&el).expect("own XML parses");
    assert_eq!(&back, history);
    // And through the textual form, as `moteur run --provenance` emits.
    let reparsed = moteur_xml::parse(&el.to_pretty_string()).expect("pretty form parses");
    assert_eq!(&history_from_xml(&reparsed).expect("parses"), history);
}

#[test]
fn deep_history_chains_round_trip() {
    // A 300-deep derivation chain — far beyond any real workflow, to
    // catch accidental recursion limits or depth-dependent rendering.
    let mut h = History::source("origin", 0);
    for i in 0..300 {
        h = History::derived(format!("stage{i}"), vec![h]);
    }
    round_trips(&h);
}

#[test]
fn wide_history_trees_round_trip() {
    // One synchronization-style node gathering 500 inputs.
    let inputs: Vec<Arc<History>> = (0..500).map(|i| History::source("src", i)).collect();
    let h = History::derived("barrier", inputs);
    round_trips(&h);
}

#[test]
fn random_history_trees_round_trip() {
    let mut rng = Lcg(2006);
    for _ in 0..200 {
        round_trips(&random_tree(&mut rng, 6));
    }
}

#[test]
fn provenance_key_ignores_sharing_and_construction_order() {
    // Build the same logical tree twice: once with every node freshly
    // allocated left-to-right, once sharing one Arc and building
    // right-to-left. The key must only see the structure.
    let fresh = History::derived(
        "combine",
        vec![History::source("a", 1), History::source("b", 2)],
    );
    let shared_b = History::source("b", 2);
    let shared_a = History::source("a", 1);
    let rebuilt = History::derived("combine", vec![shared_a, shared_b]);
    let value = DataValue::from("payload");
    assert_eq!(
        provenance_key(&value, &fresh),
        provenance_key(&value, &rebuilt)
    );
    // Swapping the children is a *different* derivation.
    let swapped = History::derived(
        "combine",
        vec![History::source("b", 2), History::source("a", 1)],
    );
    assert_ne!(
        provenance_key(&value, &fresh),
        provenance_key(&value, &swapped)
    );
}

#[test]
fn invocation_key_is_stable_for_keys_however_obtained() {
    let h = History::derived("p", vec![History::source("s", 0)]);
    let k1 = provenance_key(&DataValue::from("x"), &h).unwrap();
    let k2 = provenance_key(&DataValue::from("y"), &h).unwrap();
    // Recomputing the same pkeys later (e.g. in a different process)
    // yields the same invocation key.
    let again1 = provenance_key(&DataValue::from("x"), &h).unwrap();
    let again2 = provenance_key(&DataValue::from("y"), &h).unwrap();
    assert_eq!(
        invocation_key("svc", 42, &[k1, k2]),
        invocation_key("svc", 42, &[again1, again2])
    );
    // Port order is part of the invocation, so swapping inputs misses.
    assert_ne!(
        invocation_key("svc", 42, &[k1, k2]),
        invocation_key("svc", 42, &[k2, k1])
    );
}

/// Token *arrival order* must not affect memoization: a store populated
/// by an in-order ideal-grid run serves a run whose completions arrive
/// out of order (the stochastic EGEE grid under data parallelism), and
/// vice versa — hits are keyed by provenance, not by scheduling.
#[test]
fn memoization_is_invariant_under_completion_order() {
    let build = || {
        let mut wf = Workflow::new("order-invariance");
        let src = wf.add_source("images");
        let stage = wf.add_service(
            "stage",
            &["floating_image", "reference_image", "scale"],
            &["crest_reference", "crest_floating"],
            ServiceBinding::descriptor(crest_lines_example(), ServiceProfile::new(30.0)),
        );
        let sink = wf.add_sink("out");
        wf.connect(src, "out", stage, "floating_image").unwrap();
        wf.connect(src, "out", stage, "reference_image").unwrap();
        wf.connect(src, "out", stage, "scale").unwrap();
        wf.connect(stage, "crest_reference", sink, "in").unwrap();
        wf
    };
    let inputs = || {
        InputData::new().set(
            "images",
            (0..8)
                .map(|i| DataValue::File {
                    gfn: format!("gfn://in/{i}"),
                    bytes: 1024,
                })
                .collect(),
        )
    };
    let config = EnactorConfig::sp_dp().with_seed(11);
    let mut store = DataStore::in_memory(StoreConfig::default());

    // Cold on the stochastic grid: completions arrive out of order.
    let wf = build();
    let mut egee = SimBackend::new(GridConfig::egee_2006(), 11);
    let cold = run_cached(&wf, &inputs(), config, &mut egee, Obs::off(), &mut store).unwrap();
    assert_eq!(cold.jobs_submitted, 8);
    assert_eq!(store.stats().misses, 8);

    // Warm on the ideal grid (strictly in-order) and warm on EGEE with
    // a different seed (a different out-of-order interleaving): both
    // must hit on every invocation.
    let mut ideal = SimBackend::new(GridConfig::ideal(), 11);
    let warm = run_cached(&wf, &inputs(), config, &mut ideal, Obs::off(), &mut store).unwrap();
    assert_eq!(warm.jobs_submitted, 0, "ideal-grid warm run must all hit");
    let mut egee2 = SimBackend::new(GridConfig::egee_2006(), 999);
    let warm2 = run_cached(&wf, &inputs(), config, &mut egee2, Obs::off(), &mut store).unwrap();
    assert_eq!(warm2.jobs_submitted, 0, "reordered warm run must all hit");
    assert_eq!(store.stats().hits, 16);
}
