//! Fault-tolerant enactment end to end: retry policies (fixed /
//! backoff), timeout-triggered resubmission and speculative
//! replication (first completion wins), CE blacklisting, graceful
//! degradation under `--continue-on-error`, and the abort path's
//! obligation to cancel — not abandon — in-flight invocations.

use moteur::prelude::*;
use moteur::{
    run_fault_tolerant, run_fault_tolerant_cached, EventBuffer, QuarantineEntry, RingBufferSink,
};
use moteur_gridsim::GridConfig;
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn descriptor(name: &str, inputs: &[&str], outputs: &[&str]) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: inputs
            .iter()
            .map(|i| InputSlot {
                name: i.to_string(),
                option: format!("-{i}"),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            })
            .collect(),
        outputs: outputs
            .iter()
            .map(|o| OutputSlot {
                name: o.to_string(),
                option: format!("-{o}"),
                access: AccessMethod::Gfn,
            })
            .collect(),
        sandboxes: vec![],
        nondeterministic: false,
    }
}

fn file_inputs(n: usize, prefix: &str) -> Vec<DataValue> {
    (0..n)
        .map(|j| DataValue::File {
            gfn: format!("gfn://{prefix}/{j}"),
            bytes: 1000,
        })
        .collect()
}

fn capture() -> (Obs, EventBuffer) {
    let (sink, buffer) = RingBufferSink::new(100_000);
    (Obs::new(vec![Box::new(sink)]), buffer)
}

/// src → filter → next → sink, where `filter` rejects the value
/// "poison" and forwards everything else.
fn poisoned_workflow() -> (Workflow, InputData) {
    let filter = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        match inputs[0].value.as_str() {
            Some("poison") => Err("poisoned input".into()),
            _ => Ok(vec![("out".into(), inputs[0].value.clone())]),
        }
    };
    let forward = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        Ok(vec![("out".into(), inputs[0].value.clone())])
    };
    let mut wf = Workflow::new("poisoned");
    let src = wf.add_source("s");
    let f = wf.add_service("filter", &["in"], &["out"], ServiceBinding::local(filter));
    let n = wf.add_service("next", &["in"], &["out"], ServiceBinding::local(forward));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", f, "in").unwrap();
    wf.connect(f, "out", n, "in").unwrap();
    wf.connect(n, "out", sink, "in").unwrap();
    let inputs = InputData::new().set(
        "s",
        vec!["a".into(), "poison".into(), "b".into(), "c".into()],
    );
    (wf, inputs)
}

// ---------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------

#[test]
fn continue_on_error_quarantines_the_item_and_keeps_the_rest_flowing() {
    let (wf, inputs) = poisoned_workflow();
    let ft = FtConfig::from_legacy(0).with_continue_on_error(true);
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .expect("degrades instead of aborting");
    assert!(!r.ok());
    assert_eq!(r.sink("sink").len(), 3, "a, b, c made it through");
    assert_eq!(r.quarantined.len(), 1);
    let q: &QuarantineEntry = &r.quarantined[0];
    assert_eq!(q.processor, "filter");
    assert!(q.error.contains("poisoned input"), "{}", q.error);
    assert_eq!(
        q.descendants,
        vec!["next".to_string(), "sink".to_string()],
        "history-tree descendants that lost the item"
    );
    let report = r.report();
    assert!(!report.ok());
    let json = report.to_json();
    assert!(json.contains("\"quarantined\":1"), "{json}");
    assert!(json.contains("\"processor\":\"filter\""), "{json}");
}

#[test]
fn without_continue_on_error_the_same_failure_aborts() {
    let (wf, inputs) = poisoned_workflow();
    let ft = FtConfig::from_legacy(0);
    let mut backend = VirtualBackend::new();
    let err = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("poisoned input"), "{err}");
}

// ---------------------------------------------------------------------
// Retry policies
// ---------------------------------------------------------------------

#[test]
fn local_failures_respect_the_retry_policy() {
    // Historically only grid jobs were resubmitted; a local failure
    // aborted immediately regardless of the retry budget.
    let calls = Arc::new(AtomicU32::new(0));
    let calls_in = calls.clone();
    let flaky = move |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        if calls_in.fetch_add(1, Ordering::SeqCst) < 2 {
            Err("transient".into())
        } else {
            Ok(vec![("out".into(), inputs[0].value.clone())])
        }
    };
    let mut wf = Workflow::new("flaky-local");
    let src = wf.add_source("s");
    let p = wf.add_service("flaky", &["in"], &["out"], ServiceBinding::local(flaky));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", vec![1.0.into()]);
    let ft = FtConfig::from_legacy(2);
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .expect("third attempt succeeds");
    assert_eq!(calls.load(Ordering::SeqCst), 3, "initial + 2 retries");
    assert_eq!(r.sink("sink").len(), 1);
    assert_eq!(r.invocations[0].retries, 2);
}

#[test]
fn exponential_backoff_spaces_resubmissions_in_virtual_time() {
    let calls = Arc::new(AtomicU32::new(0));
    let calls_in = calls.clone();
    let flaky = move |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        if calls_in.fetch_add(1, Ordering::SeqCst) < 2 {
            Err("transient".into())
        } else {
            Ok(vec![("out".into(), inputs[0].value.clone())])
        }
    };
    let mut wf = Workflow::new("backoff");
    let src = wf.add_source("s");
    let p = wf.add_service("flaky", &["in"], &["out"], ServiceBinding::local(flaky));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", vec![1.0.into()]);
    let ft = FtConfig::from_legacy(0).with_default(FtPolicy {
        retry: RetryPolicy::ExponentialBackoff {
            max_retries: 3,
            base_delay: 10.0,
            factor: 2.0,
            max_delay: 60.0,
        },
        timeout: TimeoutPolicy::None,
        on_timeout: TimeoutAction::Resubmit,
    });
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .expect("third attempt succeeds");
    // Local calls cost no virtual time, so the makespan is exactly the
    // two backoff waits: 10 s + 20 s.
    let makespan = r.makespan.as_secs_f64();
    assert!(
        (makespan - 30.0).abs() < 1e-6,
        "makespan {makespan} != 10 + 20"
    );
}

#[test]
fn enactor_retries_compose_with_grid_middleware_retries() {
    // With failure probability 1 every submission chain fails: the grid
    // burns its own `max_retries` (G) per submission, then the enactor
    // resubmits E times. Total: E+1 job records of G+1 attempts each —
    // composition, not multiplication.
    let mut cfg = GridConfig::ideal();
    cfg.failure_probability = 1.0;
    cfg.max_retries = 1; // G
    let mut wf = Workflow::new("compose");
    let src = wf.add_source("s");
    let p = wf.add_service(
        "job",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(
            descriptor("job", &["in"], &["out"]),
            ServiceProfile::new(10.0),
        ),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", file_inputs(1, "in"));
    let ft = FtConfig::from_legacy(2); // E
    let mut backend = SimBackend::new(cfg, 7);
    let err = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("failed"), "{err}");
    let records = backend.sim().records();
    assert_eq!(records.len(), 3, "E+1 enactor submissions");
    for rec in records {
        assert_eq!(rec.attempts, 2, "each chain burns G+1 grid attempts");
    }
}

// ---------------------------------------------------------------------
// Timeouts and speculative replication
// ---------------------------------------------------------------------

/// One descriptor-bound processor whose compute time is `long` for
/// index 0 and `short` for the rest.
fn outlier_workflow(n: usize, short: f64, long: f64) -> (Workflow, InputData) {
    let mut wf = Workflow::new("outlier");
    let src = wf.add_source("s");
    let cost = CostModel::by_index(move |idx| if idx.0[0] == 0 { long } else { short });
    let p = wf.add_service(
        "job",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(
            descriptor("job", &["in"], &["out"]),
            ServiceProfile::new(0.0).with_cost(cost),
        ),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", file_inputs(n, "in"));
    (wf, inputs)
}

#[test]
fn replication_races_a_slow_job_and_first_completion_wins() {
    let (wf, inputs) = outlier_workflow(1, 100.0, 100.0);
    let ft = FtConfig::from_legacy(0).with_default(FtPolicy {
        retry: RetryPolicy::Fixed { max_retries: 0 },
        timeout: TimeoutPolicy::Fixed { seconds: 30.0 },
        on_timeout: TimeoutAction::Replicate { max_replicas: 1 },
    });
    let (obs, buffer) = capture();
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(&wf, &inputs, EnactorConfig::sp_dp(), &ft, &mut backend, obs)
        .expect("the original attempt wins the race");
    assert!(r.ok());
    assert_eq!(r.sink("sink").len(), 1);
    // Original runs 0→100; the replica starts at the 30 s timeout and
    // would finish at 130, so the original wins at t=100.
    assert!(
        (r.makespan.as_secs_f64() - 100.0).abs() < 1e-6,
        "makespan {}",
        r.makespan.as_secs_f64()
    );
    let events = buffer.snapshot();
    let kinds: Vec<&str> = events.iter().map(moteur::TraceEvent::kind).collect();
    assert!(kinds.contains(&"job_timed_out"), "{kinds:?}");
    assert!(kinds.contains(&"job_replicated"), "{kinds:?}");
    assert!(
        kinds.contains(&"job_cancelled"),
        "the losing replica is cancelled: {kinds:?}"
    );
    assert_eq!(r.jobs_submitted, 1, "replicas are not counted as jobs");
}

/// Regression for the critical-path analyzer under PR 5's
/// fault-tolerance events: a replication race leaves only the winning
/// attempt's timing in the invocation records, so the losing replica
/// (which would have finished *after* the makespan) must never extend
/// the reconstructed critical path.
#[test]
fn critical_path_ignores_cancelled_and_replicated_attempts() {
    let (wf, inputs) = outlier_workflow(3, 20.0, 100.0);
    let ft = FtConfig::from_legacy(0).with_default(FtPolicy {
        retry: RetryPolicy::Fixed { max_retries: 0 },
        timeout: TimeoutPolicy::Fixed { seconds: 30.0 },
        on_timeout: TimeoutAction::Replicate { max_replicas: 1 },
    });
    let (obs, buffer) = capture();
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(&wf, &inputs, EnactorConfig::sp_dp(), &ft, &mut backend, obs)
        .expect("the original attempt wins the race");
    // Item 0 runs 0→100 and times out at 30; its replica (30→130)
    // loses and is cancelled when the original completes at t=100.
    let events = buffer.snapshot();
    let kinds: Vec<&str> = events.iter().map(moteur::TraceEvent::kind).collect();
    assert!(kinds.contains(&"job_replicated"), "{kinds:?}");
    assert!(kinds.contains(&"job_cancelled"), "{kinds:?}");

    let makespan = r.makespan.as_secs_f64();
    assert!((makespan - 100.0).abs() < 1e-6, "makespan {makespan}");
    let cp = moteur::critical_path(&r);
    // The cancelled replica's would-be completion (t=130) must not
    // surface anywhere in the chain: no step outlives the makespan and
    // the chain ends exactly at the winning attempt's completion.
    for step in &cp.steps {
        assert!(
            step.finished_secs <= makespan + 1e-9,
            "step {step:?} outlives the {makespan} s makespan"
        );
    }
    let last = cp.steps.last().expect("non-empty chain");
    assert!(
        (last.finished_secs - makespan).abs() < 1e-6,
        "chain must end at the winner's completion, got {last:?}"
    );
    // One record per logical invocation: the replica never becomes a
    // second record for (processor, index).
    let mut seen = std::collections::BTreeSet::new();
    for rec in &r.invocations {
        assert!(
            seen.insert((rec.processor.clone(), format!("{:?}", rec.index))),
            "duplicate record for {} {:?}",
            rec.processor,
            rec.index
        );
    }
}

#[test]
fn timeout_resubmission_exhausts_the_retry_budget_then_fails() {
    let (wf, inputs) = outlier_workflow(1, 100.0, 100.0);
    let ft = FtConfig::from_legacy(0).with_default(FtPolicy {
        retry: RetryPolicy::Fixed { max_retries: 1 },
        timeout: TimeoutPolicy::Fixed { seconds: 10.0 },
        on_timeout: TimeoutAction::Resubmit,
    });
    let (obs, buffer) = capture();
    let mut backend = VirtualBackend::new();
    let err = run_fault_tolerant(&wf, &inputs, EnactorConfig::sp_dp(), &ft, &mut backend, obs)
        .unwrap_err();
    assert!(err.to_string().contains("timed out"), "{err}");
    let events = buffer.snapshot();
    let timeouts = events
        .iter()
        .filter(|e| e.kind() == "job_timed_out")
        .count();
    assert_eq!(timeouts, 2, "one resubmission, one terminal timeout");
    // The workflow aborted at t=20, not after the 100 s job.
    assert!(
        (backend.now().as_secs_f64() - 20.0).abs() < 1e-6,
        "clock {}",
        backend.now().as_secs_f64()
    );
}

#[test]
fn adaptive_timeout_learns_from_completions_and_catches_the_outlier() {
    // 7 fast 10 s jobs plus one 1000 s outlier. The adaptive policy has
    // no fallback budget (warm-up is uncapped); once the fast wave
    // completes, 3 × median ≈ 30 s retroactively declares the outlier
    // late, and a replica... would not help on the deterministic
    // VirtualBackend — resubmission cannot either, but the budget-1
    // resubmit path plus continue_on_error quarantines it instead of
    // hanging for 1000 s.
    let (wf, inputs) = outlier_workflow(8, 10.0, 1000.0);
    let ft = FtConfig::from_legacy(0)
        .with_default(FtPolicy {
            retry: RetryPolicy::Fixed { max_retries: 0 },
            timeout: TimeoutPolicy::Adaptive {
                percentile: 0.5,
                multiplier: 3.0,
                min_samples: 4,
                fallback: f64::INFINITY,
            },
            on_timeout: TimeoutAction::Resubmit,
        })
        .with_continue_on_error(true);
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .expect("degrades gracefully");
    assert_eq!(r.sink("sink").len(), 7, "the fast jobs all delivered");
    assert_eq!(r.quarantined.len(), 1, "the outlier was quarantined");
    assert!(
        r.makespan.as_secs_f64() < 100.0,
        "the run must not wait out the 1000 s outlier: {}",
        r.makespan.as_secs_f64()
    );
}

// ---------------------------------------------------------------------
// CE blacklisting
// ---------------------------------------------------------------------

#[test]
fn repeated_failures_blacklist_the_computing_element() {
    let mut cfg = GridConfig::ideal();
    cfg.failure_probability = 1.0;
    cfg.max_retries = 0;
    let mut wf = Workflow::new("blacklist");
    let src = wf.add_source("s");
    let p = wf.add_service(
        "job",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(
            descriptor("job", &["in"], &["out"]),
            ServiceProfile::new(5.0),
        ),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", file_inputs(1, "in"));
    let ft = FtConfig::from_legacy(6)
        .with_ce_blacklist(2)
        .with_continue_on_error(true);
    let (obs, buffer) = capture();
    let mut backend = SimBackend::new(cfg, 3);
    let r = run_fault_tolerant(&wf, &inputs, EnactorConfig::sp_dp(), &ft, &mut backend, obs)
        .expect("degrades gracefully");
    assert!(!r.ok(), "with p=1 the item is eventually quarantined");
    let events = buffer.snapshot();
    assert!(
        events.iter().any(|e| e.kind() == "ce_blacklisted"),
        "two consecutive failures on one CE must blacklist it"
    );
}

// ---------------------------------------------------------------------
// Abort path
// ---------------------------------------------------------------------

#[test]
fn abort_cancels_pending_invocations_instead_of_abandoning_them() {
    let bad = |_: &[Token]| -> Result<Vec<(String, DataValue)>, String> { Err("broken".into()) };
    let mut wf = Workflow::new("abort");
    let src = wf.add_source("s");
    let slow = wf.add_service(
        "slow",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(
            descriptor("slow", &["in"], &["out"]),
            ServiceProfile::new(500.0),
        ),
    );
    let b = wf.add_service("bad", &["in"], &["out"], ServiceBinding::local(bad));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", slow, "in").unwrap();
    wf.connect(src, "out", b, "in").unwrap();
    wf.connect(slow, "out", sink, "in").unwrap();
    wf.connect(b, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", file_inputs(1, "in"));
    let ft = FtConfig::from_legacy(0);
    let (obs, buffer) = capture();
    let mut backend = VirtualBackend::new();
    let err = run_fault_tolerant(&wf, &inputs, EnactorConfig::sp_dp(), &ft, &mut backend, obs)
        .unwrap_err();
    assert!(err.to_string().contains("broken"), "{err}");
    let events = buffer.snapshot();
    // Every submitted invocation must reach exactly one terminal event
    // even on abort: `bad` fails, `slow` is cancelled — none abandoned.
    let submitted: Vec<u64> = events
        .iter()
        .filter(|e| e.kind() == "job_submitted")
        .filter_map(moteur::TraceEvent::invocation)
        .collect();
    assert_eq!(submitted.len(), 2);
    for inv in submitted {
        let terminals = events
            .iter()
            .filter(|e| e.invocation() == Some(inv) && e.is_terminal())
            .count();
        assert_eq!(terminals, 1, "invocation {inv} left without a terminal");
    }
    assert!(
        events.iter().any(|e| e.kind() == "job_cancelled"),
        "the in-flight `slow` job must be explicitly cancelled"
    );
}

// ---------------------------------------------------------------------
// Quarantine vs the data manager
// ---------------------------------------------------------------------

#[test]
fn quarantined_invocations_are_never_memoized() {
    let (wf, inputs) = outlier_workflow(4, 10.0, 1000.0);
    let ft = FtConfig::from_legacy(0)
        .with_default(FtPolicy {
            retry: RetryPolicy::Fixed { max_retries: 0 },
            timeout: TimeoutPolicy::Fixed { seconds: 50.0 },
            on_timeout: TimeoutAction::Resubmit,
        })
        .with_continue_on_error(true);
    let mut store = DataStore::in_memory(StoreConfig::default());
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant_cached(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
        &mut store,
    )
    .expect("degrades gracefully");
    assert_eq!(r.quarantined.len(), 1);
    assert_eq!(
        store.stats().invocations,
        3,
        "only the completed invocations are memoized"
    );
    // A warm re-run replays the three completed items from the store
    // and re-attempts (and re-quarantines) the poisoned one.
    let (obs, buffer) = capture();
    let mut backend2 = VirtualBackend::new();
    let r2 = run_fault_tolerant_cached(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend2,
        obs,
        &mut store,
    )
    .expect("still degrades gracefully");
    assert_eq!(r2.quarantined.len(), 1, "the poison is not cached away");
    let hits = buffer
        .snapshot()
        .iter()
        .filter(|e| e.kind() == "cache_hit")
        .count();
    assert_eq!(hits, 3, "completed items replay; the quarantined never");
}

// ---------------------------------------------------------------------
// Local backend: late completions of timed-out attempts
// ---------------------------------------------------------------------

#[test]
fn local_backend_discards_late_completion_after_timeout_resubmit() {
    // LocalBackend::cancel is always `false` — a spawned worker thread
    // cannot be stopped, so a timed-out attempt's completion WILL
    // arrive after its resubmission already won. The enactor must
    // discard it, not double-record the invocation or die on an
    // unknown tag.
    let calls = Arc::new(AtomicU32::new(0));
    let seen = calls.clone();
    let slow_once = move |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        if seen.fetch_add(1, Ordering::SeqCst) == 0 {
            // First attempt outlives its 80ms timeout by a wide margin
            // and lands while the tail service still holds the run
            // loop open.
            std::thread::sleep(std::time::Duration::from_millis(400));
        } else {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        Ok(vec![("out".into(), inputs[0].value.clone())])
    };
    let tail = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        // Long enough that the workflow is still running when the
        // first attempt's late completion surfaces at ~400ms.
        std::thread::sleep(std::time::Duration::from_millis(600));
        Ok(vec![("out".into(), inputs[0].value.clone())])
    };
    let mut wf = Workflow::new("late");
    let src = wf.add_source("s");
    let p = wf.add_service("slow", &["in"], &["out"], ServiceBinding::local(slow_once));
    let t = wf.add_service("tail", &["in"], &["out"], ServiceBinding::local(tail));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", p, "in").unwrap();
    wf.connect(p, "out", t, "in").unwrap();
    wf.connect(t, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("s", vec![DataValue::from(7.0)]);
    // Only `slow` times out; generous retries absorb scheduler noise.
    let ft = FtConfig::from_legacy(0).with_policy(
        "slow",
        FtPolicy {
            retry: RetryPolicy::Fixed { max_retries: 5 },
            timeout: TimeoutPolicy::Fixed { seconds: 0.08 },
            on_timeout: TimeoutAction::Resubmit,
        },
    );
    let mut backend = LocalBackend::new();
    let r = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp(),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .expect("late completion is discarded, not fatal");
    assert_eq!(r.sink("sink").len(), 1, "exactly one result delivered");
    assert_eq!(
        r.invocations
            .iter()
            .filter(|i| i.processor == "slow")
            .count(),
        1,
        "the invocation is recorded once, not once per attempt"
    );
    let slow_rec = r
        .invocations
        .iter()
        .find(|i| i.processor == "slow")
        .unwrap();
    assert!(slow_rec.retries >= 1, "the timeout consumed a retry");
    assert!(
        calls.load(Ordering::SeqCst) >= 2,
        "both the original and the resubmitted attempt really ran"
    );
}
