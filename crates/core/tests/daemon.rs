//! Behavioural tests of the multi-tenant enactment daemon: shared
//! memo table, per-instance cancel isolation, admission control and
//! weighted-fair dispatch.

use moteur::daemon::protocol;
use moteur::{
    Daemon, DaemonConfig, DataStore, EnactorConfig, FtConfig, InputData, InstanceState,
    MoteurError, StoreConfig, TenantConfig, VirtualBackend, Workflow,
};

fn parser(workflow: &str, inputs: &str) -> Result<(Workflow, InputData), MoteurError> {
    let w = moteur_scufl::parse_workflow(workflow).map_err(|e| MoteurError::new(e.message))?;
    let i = moteur_scufl::parse_input_data(inputs).map_err(|e| MoteurError::new(e.message))?;
    Ok((w, i))
}

fn tiny_workflow() -> String {
    r#"<scufl name="tiny">
  <source name="s" bytes="64"/>
  <processor name="p" compute="5">
    <executable name="x">
      <access type="URL"><path value="http://h"/></access>
      <value value="x"/>
      <input name="in" option="-i"><access type="GFN"/></input>
      <output name="out" option="-o"><access type="GFN"/></output>
    </executable>
    <outputsize slot="out" bytes="10"/>
  </processor>
  <sink name="k"/>
  <link from="s:out" to="p:in"/>
  <link from="p:out" to="k:in"/>
</scufl>"#
        .to_string()
}

fn tiny_inputs(n: usize) -> String {
    let items: String = (0..n)
        .map(|j| format!(r#"<item type="file" gfn="gfn://x/i{j}" bytes="64"/>"#))
        .collect();
    format!(r#"<inputdata><input name="s">{items}</input></inputdata>"#)
}

fn daemon() -> Daemon {
    Daemon::new(
        Box::new(VirtualBackend::new()),
        DataStore::in_memory(StoreConfig::default()),
        parser,
        DaemonConfig::default(),
    )
}

fn submit(d: &mut Daemon, tenant: &str, n_data: usize) -> u32 {
    d.submit(
        tenant,
        &tiny_workflow(),
        &tiny_inputs(n_data),
        EnactorConfig::sp_dp(),
        FtConfig::default(),
    )
    .expect("tiny workflow submits")
}

#[test]
fn second_tenants_identical_submission_hits_the_shared_memo_table() {
    let mut d = daemon();
    let a = submit(&mut d, "alice", 4);
    d.drain();
    let b = submit(&mut d, "bob", 4);
    d.drain();
    let sa = d.status(a).unwrap();
    let sb = d.status(b).unwrap();
    assert_eq!(sa.state, InstanceState::Succeeded);
    assert_eq!(sb.state, InstanceState::Succeeded);
    assert!(sa.store_misses > 0, "cold tenant misses: {sa:?}");
    assert_eq!(sb.store_misses, 0, "warm tenant recomputes: {sb:?}");
    assert!(sb.store_hits > 0, "warm tenant hits: {sb:?}");
    let m = d.metrics();
    let bob = m.tenants.iter().find(|t| t.tenant == "bob").unwrap();
    assert!((bob.hit_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn cancel_drains_only_the_instances_own_jobs() {
    let mut d = daemon();
    let doomed = submit(&mut d, "alice", 8);
    let sibling = submit(&mut d, "bob", 8);
    assert!(d.status(doomed).unwrap().inflight > 0, "jobs are in flight");
    assert!(d.cancel(doomed));
    assert!(!d.cancel(doomed), "double cancel is refused");
    d.drain();
    assert_eq!(d.status(doomed).unwrap().state, InstanceState::Cancelled);
    let s = d.status(sibling).unwrap();
    assert_eq!(
        s.state,
        InstanceState::Succeeded,
        "sibling jobs survived the cancel: {s:?}"
    );
}

#[test]
fn admission_queues_beyond_the_tenant_workflow_cap() {
    let mut d = daemon();
    d.set_tenant(
        "alice",
        TenantConfig {
            max_inflight_workflows: 1,
            ..TenantConfig::default()
        },
    )
    .unwrap();
    let ids: Vec<u32> = (0..3).map(|_| submit(&mut d, "alice", 2)).collect();
    let states: Vec<InstanceState> = ids.iter().map(|&id| d.status(id).unwrap().state).collect();
    assert_eq!(
        states,
        vec![
            InstanceState::Running,
            InstanceState::Queued,
            InstanceState::Queued
        ]
    );
    d.drain();
    for id in ids {
        assert_eq!(d.status(id).unwrap().state, InstanceState::Succeeded);
    }
}

#[test]
fn a_flooding_tenant_cannot_delay_anothers_first_job() {
    let mut d = daemon();
    for _ in 0..50 {
        submit(&mut d, "flood", 2);
    }
    let vip = submit(&mut d, "vip", 2);
    let s = d.status(vip).unwrap();
    // Admission is immediate (the vip tenant has free workflow slots)
    // and dispatch is weighted round-robin, so the vip's first job
    // fires at submission time regardless of the flood.
    assert_eq!(
        s.first_job_at,
        Some(s.submitted_at),
        "time-to-first-job exceeded the admission bound: {s:?}"
    );
    d.drain();
    assert_eq!(d.metrics().succeeded, 51);
}

#[test]
fn extreme_weight_and_quantum_saturate_instead_of_overflowing() {
    // weight × quantum overflows usize by many orders of magnitude;
    // the dispatch budget must saturate (then clamp to the job
    // ceiling), not wrap around to a tiny or panicking cap.
    let mut d = Daemon::new(
        Box::new(VirtualBackend::new()),
        DataStore::in_memory(StoreConfig::default()),
        parser,
        DaemonConfig {
            quantum: usize::MAX,
            ..DaemonConfig::default()
        },
    );
    d.set_tenant(
        "alice",
        TenantConfig {
            weight: u32::MAX,
            ..TenantConfig::default()
        },
    )
    .unwrap();
    let id = submit(&mut d, "alice", 4);
    d.drain();
    assert_eq!(d.status(id).unwrap().state, InstanceState::Succeeded);
}

#[test]
fn weight_zero_is_rejected_by_set_tenant() {
    let mut d = daemon();
    let err = d
        .set_tenant(
            "alice",
            TenantConfig {
                weight: 0,
                ..TenantConfig::default()
            },
        )
        .unwrap_err();
    assert!(
        err.message().contains("weight 0"),
        "error names the bad weight: {err:?}"
    );
    // The rejected override took no effect: alice still schedules.
    let id = submit(&mut d, "alice", 2);
    d.drain();
    assert_eq!(d.status(id).unwrap().state, InstanceState::Succeeded);
}

#[test]
fn weight_zero_tenant_default_is_rejected_at_submit() {
    // A config constructed directly (bypassing set_tenant) can still
    // carry weight 0; submission must fail loudly instead of admitting
    // a workflow that would never be dispatched.
    let mut d = Daemon::new(
        Box::new(VirtualBackend::new()),
        DataStore::in_memory(StoreConfig::default()),
        parser,
        DaemonConfig {
            tenant_defaults: TenantConfig {
                weight: 0,
                ..TenantConfig::default()
            },
            ..DaemonConfig::default()
        },
    );
    let err = d
        .submit(
            "alice",
            &tiny_workflow(),
            &tiny_inputs(1),
            EnactorConfig::sp_dp(),
            FtConfig::default(),
        )
        .unwrap_err();
    assert!(
        err.message().contains("weight 0"),
        "error names the starvation hazard: {err:?}"
    );
    assert!(d.list().is_empty(), "rejected submissions take no slot");
}

#[test]
fn protocol_surfaces_weight_zero_rejection_as_error_response() {
    let workflow = tiny_workflow().replace('"', "\\\"").replace('\n', "\\n");
    let inputs = tiny_inputs(1).replace('"', "\\\"");
    let session = format!(
        r#"{{"schema":"moteur/daemon/v1","op":"submit","tenant":"a","workflow":"{workflow}","inputs":"{inputs}"}}"#,
    );
    let mut d = Daemon::new(
        Box::new(VirtualBackend::new()),
        DataStore::in_memory(StoreConfig::default()),
        parser,
        DaemonConfig {
            tenant_defaults: TenantConfig {
                weight: 0,
                ..TenantConfig::default()
            },
            ..DaemonConfig::default()
        },
    );
    let mut out = Vec::new();
    protocol::serve(&mut d, session.as_bytes(), &mut out).unwrap();
    let response = String::from_utf8(out).unwrap();
    assert!(response.contains(r#""ok":false"#), "{response}");
    assert!(response.contains("weight 0"), "{response}");
}

#[test]
fn malformed_scufl_is_rejected_at_submit() {
    let mut d = daemon();
    let err = d
        .submit(
            "alice",
            "<scufl",
            &tiny_inputs(1),
            EnactorConfig::sp_dp(),
            FtConfig::default(),
        )
        .unwrap_err();
    assert!(!err.message().is_empty());
    assert!(d.list().is_empty(), "rejected submissions take no slot");
}

#[test]
fn serve_is_byte_stable_across_identical_sessions() {
    let workflow = tiny_workflow().replace('"', "\\\"").replace('\n', "\\n");
    let inputs = tiny_inputs(2).replace('"', "\\\"");
    let session = format!(
        concat!(
            r#"{{"schema":"moteur/daemon/v1","op":"submit","tenant":"a","workflow":"{w}","inputs":"{i}"}}"#,
            "\n",
            r#"{{"schema":"moteur/daemon/v1","op":"drain"}}"#,
            "\n",
            r#"{{"schema":"moteur/daemon/v1","op":"status","id":1}}"#,
            "\n",
            r#"{{"schema":"moteur/daemon/v1","op":"metrics"}}"#,
            "\n",
            r#"{{"schema":"moteur/daemon/v1","op":"shutdown"}}"#,
            "\n",
        ),
        w = workflow,
        i = inputs
    );
    let run = |input: &str| -> String {
        let mut d = daemon();
        let mut out = Vec::new();
        protocol::serve(&mut d, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    };
    let first = run(&session);
    let second = run(&session);
    assert_eq!(first, second, "responses drifted between sessions");
    let status_line = first
        .lines()
        .find(|l| l.contains(r#""op":"status""#))
        .unwrap();
    assert!(
        status_line.contains(r#""state":"succeeded""#),
        "{status_line}"
    );
    assert!(
        status_line.starts_with(
            r#"{"schema":"moteur/daemon/v1","op":"status","ok":true,"instance":{"id":1,"tenant":"a","workflow":"tiny","state":"succeeded","submitted_at":0,"first_job_at":0,"#
        ),
        "status field order is part of the protocol: {status_line}"
    );
}
