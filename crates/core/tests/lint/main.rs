//! Fixture suite for the static lint rules: every `M0xx` code fires on
//! a dedicated SCUFL fixture, with the right severity and a primary
//! span that resolves to the offending line of the source.

use moteur::lint::{
    lint_workflow, report_from_json, report_to_json, Diagnostic, LintReport, Severity,
};
use moteur::{ServiceBinding, ServiceProfile, Workflow};
use moteur_scufl::lint_source;
use moteur_wrapper::crest_lines_example;

fn fixture_text(name: &str) -> String {
    let path = format!("{}/tests/lint/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Parse leniently and merge parse-stage diagnostics with the workflow
/// rules — the same report `moteur lint` builds.
fn lint_fixture(name: &str) -> (String, LintReport) {
    let text = fixture_text(name);
    let (wf, parse_diags) = lint_source(&text);
    let mut report = LintReport::new(parse_diags);
    if let Some(wf) = &wf {
        report.extend(lint_workflow(wf).diagnostics);
    }
    report.sort();
    (text, report)
}

fn find<'r>(report: &'r LintReport, code: &str) -> &'r Diagnostic {
    report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| {
            panic!(
                "expected {code} in report, got: {:?}",
                report
                    .diagnostics
                    .iter()
                    .map(|d| d.code)
                    .collect::<Vec<_>>()
            )
        })
}

/// Assert the fixture raises `code` at `severity`, with a primary span
/// whose source slice contains `needle` (i.e. points at the offending
/// SCUFL construct, not at offset 0).
fn check(fixture: &str, code: &str, severity: Severity, needle: &str) {
    let (text, report) = lint_fixture(fixture);
    let d = find(&report, code);
    assert_eq!(d.severity, severity, "{code} severity in {fixture}");
    let span = d.primary_span();
    assert!(
        span.end > span.start && span.end <= text.len(),
        "{code} in {fixture} has no usable primary span: {span:?}"
    );
    let slice = &text[span.start..span.end];
    assert!(
        slice.contains(needle),
        "{code} span in {fixture} points at {slice:?}, expected it to contain {needle:?}"
    );
}

#[test]
fn clean_fixture_has_zero_diagnostics() {
    let (_, report) = lint_fixture("clean.xml");
    assert!(
        report.is_empty(),
        "clean fixture should lint clean, got: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| (d.code, &d.message))
            .collect::<Vec<_>>()
    );
}

#[test]
fn m000_fatal_xml_is_the_only_diagnostic() {
    let text = fixture_text("m000_fatal_xml.xml");
    let (wf, diags) = lint_source(&text);
    assert!(wf.is_none(), "fatal XML must not yield a workflow");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "M000");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn m001_dangling_link() {
    check(
        "m001_dangling_link.xml",
        "M001",
        Severity::Error,
        "ghost:in",
    );
}

#[test]
fn m002_unreachable_sink() {
    check(
        "m002_unreachable_sink.xml",
        "M002",
        Severity::Error,
        r#"name="orphan""#,
    );
}

#[test]
fn m003_dead_end_source() {
    check(
        "m003_dead_end_source.xml",
        "M003",
        Severity::Warning,
        r#"name="unused""#,
    );
}

#[test]
fn m004_closed_cycle() {
    check("m004_closed_cycle.xml", "M004", Severity::Error, "loop");
}

#[test]
fn m005_self_link() {
    check(
        "m005_self_link.xml",
        "M005",
        Severity::Warning,
        "stage:feedback",
    );
}

#[test]
fn m006_cycle_with_exit() {
    check(
        "m006_cycle_with_exit.xml",
        "M006",
        Severity::Note,
        "optimize",
    );
}

#[test]
fn m007_duplicate_name() {
    check(
        "m007_duplicate_name.xml",
        "M007",
        Severity::Error,
        r#"name="dup""#,
    );
}

#[test]
fn m010_unconnected_input() {
    check(
        "m010_unconnected_input.xml",
        "M010",
        Severity::Error,
        r#"name="stage""#,
    );
}

#[test]
fn m011_multiply_fed_input() {
    check(
        "m011_multiply_fed.xml",
        "M011",
        Severity::Warning,
        "stage:in",
    );
}

#[test]
fn m012_param_names_unknown_slot() {
    check(
        "m012_param_unknown_slot.xml",
        "M012",
        Severity::Error,
        r#"slot="nope""#,
    );
}

#[test]
fn m013_outputsize_names_unknown_slot() {
    check(
        "m013_outputsize_unknown_slot.xml",
        "M013",
        Severity::Warning,
        r#"slot="nope""#,
    );
}

#[test]
fn m014_unconsumed_output() {
    check(
        "m014_unconsumed_output.xml",
        "M014",
        Severity::Note,
        r#"name="stage""#,
    );
}

#[test]
fn m020_dot_degree_mismatch() {
    check("m020_dot_mismatch.xml", "M020", Severity::Warning, "mix");
}

#[test]
fn m021_cross_product_blowup() {
    check(
        "m021_cross_blowup.xml",
        "M021",
        Severity::Warning,
        "register",
    );
}

#[test]
fn m030_groupable_pair() {
    check(
        "m030_groupable_pair.xml",
        "M030",
        Severity::Note,
        r#"name="first""#,
    );
}

#[test]
fn m031_ungroupable_pair_names_the_reason() {
    let (text, report) = lint_fixture("m031_ungroupable_pair.xml");
    let d = find(&report, "M031");
    assert_eq!(d.severity, Severity::Note);
    assert!(
        d.message.contains("synchronization barrier"),
        "M031 should explain the §3.6 blocker, got: {}",
        d.message
    );
    let span = d.primary_span();
    assert!(text[span.start..span.end].contains(r#"name="first""#));
}

#[test]
fn m040_no_op_barrier() {
    check(
        "m040_no_op_barrier.xml",
        "M040",
        Severity::Warning,
        r#"name="regather""#,
    );
}

#[test]
fn m041_coordination_cycle() {
    check(
        "m041_coordination_cycle.xml",
        "M041",
        Severity::Error,
        "coordination",
    );
}

#[test]
fn m042_redundant_coordination() {
    check(
        "m042_redundant_coordination.xml",
        "M042",
        Severity::Warning,
        "coordination",
    );
}

#[test]
fn m050_descriptor_finding() {
    let (_, report) = lint_fixture("m050_descriptor_finding.xml");
    let d = find(&report, "M050");
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        d.message.contains("-x"),
        "M050 should name the shared option, got: {}",
        d.message
    );
}

#[test]
fn m060_unknown_element() {
    check(
        "m060_unknown_element.xml",
        "M060",
        Severity::Error,
        "<mystery/>",
    );
}

#[test]
fn m061_missing_attribute() {
    check(
        "m061_missing_attribute.xml",
        "M061",
        Severity::Error,
        r#"<link from="stage:out"/>"#,
    );
}

#[test]
fn m062_bad_attribute_value() {
    check(
        "m062_bad_attribute_value.xml",
        "M062",
        Severity::Error,
        "banana",
    );
}

#[test]
fn m063_bad_endpoint() {
    check(
        "m063_bad_endpoint.xml",
        "M063",
        Severity::Error,
        "imagesout",
    );
}

#[test]
fn m064_missing_executable() {
    check(
        "m064_missing_executable.xml",
        "M064",
        Severity::Error,
        r#"name="stage""#,
    );
}

/// M008 cannot be expressed in SCUFL (the parser always produces a
/// descriptor binding), so exercise it on a hand-built workflow.
#[test]
fn m008_unbound_service_programmatic() {
    let mut wf = Workflow::new("m008");
    let src = wf.add_source("s");
    let svc = wf.add_service(
        "loose",
        &["in"],
        &["out"],
        ServiceBinding::local(|_inputs: &[moteur::Token]| {
            Ok(vec![("out".into(), moteur::DataValue::from("x"))])
        }),
    );
    let sink = wf.add_sink("k");
    wf.connect(src, "out", svc, "in").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();
    wf.processors[svc.0].binding = None;
    let report = lint_workflow(&wf);
    let d = find(&report, "M008");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("loose"));
}

/// M051 likewise: a port list that disagrees with the descriptor can
/// only be built through the API.
#[test]
fn m051_port_descriptor_mismatch_programmatic() {
    let mut wf = Workflow::new("m051");
    let src = wf.add_source("s");
    let svc = wf.add_service(
        "stage",
        &["in", "extra"],
        &["out"],
        ServiceBinding::descriptor(crest_lines_example(), ServiceProfile::new(10.0)),
    );
    let sink = wf.add_sink("k");
    wf.connect(src, "out", svc, "in").unwrap();
    wf.connect(src, "out", svc, "extra").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();
    let report = lint_workflow(&wf);
    let d = find(&report, "M051");
    assert_eq!(d.severity, Severity::Error);
}

/// M070: a descriptor declared non-deterministic is safe to run but
/// unsafe to memoize — surfaced as a warning, never a preflight error.
#[test]
fn m070_nondeterministic_descriptor_programmatic() {
    let mut descriptor = crest_lines_example();
    descriptor.nondeterministic = true;
    let mut wf = Workflow::new("m070");
    let src = wf.add_source("s");
    let svc = wf.add_service(
        "stage",
        &["floating_image", "reference_image", "scale"],
        &["crest_reference", "crest_floating"],
        ServiceBinding::descriptor(descriptor, ServiceProfile::new(10.0)),
    );
    let sink = wf.add_sink("k");
    wf.connect(src, "out", svc, "floating_image").unwrap();
    wf.connect(src, "out", svc, "reference_image").unwrap();
    wf.connect(src, "out", svc, "scale").unwrap();
    wf.connect(svc, "crest_reference", sink, "in").unwrap();
    let report = lint_workflow(&wf);
    let d = find(&report, "M070");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("stage"), "names the processor");
    assert!(d.message.contains("memoized"), "explains the consequence");
    // A warning must not block enactment preflight.
    assert!(moteur::lint_errors(&wf)
        .diagnostics
        .iter()
        .all(|d| d.code != "M070"));
}

/// The JSON renderer round-trips a real multi-rule report exactly.
#[test]
fn fixture_report_round_trips_through_json() {
    let (_, report) = lint_fixture("m031_ungroupable_pair.xml");
    assert!(!report.is_empty());
    let json = report_to_json(&report);
    let back = report_from_json(&json).expect("own JSON parses");
    assert_eq!(back, report);
}
