//! Property-style tests of enactor invariants over exhaustively
//! enumerated workflow shapes: whatever the parallelism configuration
//! or batching, the *results* (cardinalities, values, provenance) must
//! be identical — only timing may change.
//!
//! The parameter spaces here are small enough to sweep completely, so
//! these run every shape rather than a random sample (and need no
//! external property-testing dependency: the workspace builds offline).

use moteur::prelude::*;
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn descriptor(name: &str, inputs: usize) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: (0..inputs)
            .map(|i| InputSlot {
                name: format!("in{i}"),
                option: format!("-i{i}"),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            })
            .collect(),
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    }
}

/// A randomly shaped layered workflow: `width` parallel chains of
/// `depth` services over one source, merged into one final dot-join.
fn layered_workflow(width: usize, depth: usize) -> Workflow {
    let mut wf = Workflow::new("layered");
    let src = wf.add_source("data");
    let mut chain_ends = Vec::new();
    for w in 0..width {
        let mut prev = (src, "out".to_string());
        for d in 0..depth {
            let name = format!("s{w}_{d}");
            let svc = wf.add_service(
                &name,
                &["in0"],
                &["out"],
                ServiceBinding::descriptor(
                    descriptor(&name, 1),
                    ServiceProfile::new(1.0 + (w * 7 + d * 3) as f64),
                ),
            );
            wf.connect(prev.0, &prev.1, svc, "in0").unwrap();
            prev = (svc, "out".to_string());
        }
        chain_ends.push(prev.0);
    }
    let join_inputs: Vec<String> = (0..width).map(|i| format!("in{i}")).collect();
    let join_refs: Vec<&str> = join_inputs.iter().map(String::as_str).collect();
    let join = wf.add_service(
        "join",
        &join_refs,
        &["out"],
        ServiceBinding::descriptor(descriptor("join", width), ServiceProfile::new(2.0)),
    );
    for (i, end) in chain_ends.iter().enumerate() {
        wf.connect(*end, "out", join, &format!("in{i}")).unwrap();
    }
    let sink = wf.add_sink("sink");
    wf.connect(join, "out", sink, "in").unwrap();
    wf
}

fn inputs(n: usize) -> InputData {
    InputData::new().set(
        "data",
        (0..n)
            .map(|j| DataValue::File {
                gfn: format!("gfn://d/{j}"),
                bytes: 64,
            })
            .collect(),
    )
}

/// A config-independent fingerprint of the results: sorted (index,
/// source-provenance) of every sink token.
fn fingerprint(r: &WorkflowResult) -> Vec<(DataIndex, Vec<(String, u32)>)> {
    let mut v: Vec<(DataIndex, Vec<(String, u32)>)> = r
        .sink("sink")
        .iter()
        .map(|t| (t.index.clone(), t.history.sources()))
        .collect();
    v.sort();
    v
}

/// Parallelism configuration must never change what is computed.
/// Exhaustive over width × depth × n_data.
#[test]
fn results_are_independent_of_configuration() {
    for width in 1usize..4 {
        for depth in 1usize..4 {
            for n_data in 1usize..6 {
                let wf = layered_workflow(width, depth);
                let data = inputs(n_data);
                let reference = {
                    let mut backend = VirtualBackend::new();
                    fingerprint(&run(&wf, &data, EnactorConfig::nop(), &mut backend).unwrap())
                };
                for config in [
                    EnactorConfig::dp(),
                    EnactorConfig::sp(),
                    EnactorConfig::sp_dp(),
                    EnactorConfig::sp_dp_jg(),
                    EnactorConfig::sp_dp().with_batching(3),
                ] {
                    let mut backend = VirtualBackend::new();
                    let r = run(&wf, &data, config, &mut backend).unwrap();
                    assert_eq!(
                        fingerprint(&r).len(),
                        reference.len(),
                        "{}: cardinality changed at {width}x{depth}x{n_data}",
                        config.label()
                    );
                    // Dot joins pair per-index: every result derives from a
                    // single source position across all chains.
                    for (_, sources) in fingerprint(&r) {
                        let positions: std::collections::HashSet<u32> =
                            sources.iter().map(|(_, p)| *p).collect();
                        assert_eq!(positions.len(), 1, "provenance mixes data sets");
                    }
                }
            }
        }
    }
}

/// Every invocation record respects submitted ≤ started ≤ finished,
/// and the makespan covers the last completion. Exhaustive.
#[test]
fn invocation_records_are_well_formed() {
    for width in 1usize..3 {
        for depth in 1usize..4 {
            for n_data in 1usize..5 {
                let wf = layered_workflow(width, depth);
                let mut backend = VirtualBackend::new();
                let r = run(&wf, &inputs(n_data), EnactorConfig::sp_dp(), &mut backend).unwrap();
                assert_eq!(r.invocations.len(), (width * depth + 1) * n_data);
                let mut last = 0.0f64;
                for rec in &r.invocations {
                    assert!(rec.submitted <= rec.started);
                    assert!(rec.started <= rec.finished);
                    last = last.max(rec.finished.as_secs_f64());
                }
                assert!((r.makespan.as_secs_f64() - last).abs() < 1e-6);
            }
        }
    }
}

/// Batching never changes the number of results, only job counts.
/// Exhaustive over batch size × data-set size.
#[test]
fn batching_preserves_cardinality() {
    for batch in 1usize..8 {
        for n_data in 1usize..10 {
            let wf = layered_workflow(1, 2);
            let data = inputs(n_data);
            let mut b1 = VirtualBackend::new();
            let plain = run(&wf, &data, EnactorConfig::sp_dp(), &mut b1).unwrap();
            let mut b2 = VirtualBackend::new();
            let batched = run(
                &wf,
                &data,
                EnactorConfig::sp_dp().with_batching(batch),
                &mut b2,
            )
            .unwrap();
            assert_eq!(plain.sink("sink").len(), batched.sink("sink").len());
            assert!(batched.jobs_submitted <= plain.jobs_submitted);
        }
    }
}
