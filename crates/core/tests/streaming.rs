//! Bounded-port streaming enactment: back-pressure end to end from
//! source cursors through service chains, suspend/resume transitions,
//! barrier collection points on bounded edges, graceful degradation
//! under quarantine, and the obligation that the eager cold path stays
//! byte-identical when ports are unbounded.

use moteur::prelude::*;
use moteur::{run_fault_tolerant, EventBuffer, RingBufferSink};

fn capture() -> (Obs, EventBuffer) {
    let (sink, buffer) = RingBufferSink::new(100_000);
    (Obs::new(vec![Box::new(sink)]), buffer)
}

fn double(inputs: &[Token]) -> Result<Vec<(String, DataValue)>, String> {
    let x = inputs[0].value.as_num().ok_or("not a number")?;
    Ok(vec![("out".into(), DataValue::from(x * 2.0))])
}

fn negate(inputs: &[Token]) -> Result<Vec<(String, DataValue)>, String> {
    let x = inputs[0].value.as_num().ok_or("not a number")?;
    Ok(vec![("out".into(), DataValue::from(-x))])
}

/// nums → double → negate → sink.
fn chain() -> Workflow {
    let mut wf = Workflow::new("chain");
    let src = wf.add_source("nums");
    let d = wf.add_service("double", &["in"], &["out"], ServiceBinding::local(double));
    let n = wf.add_service("negate", &["in"], &["out"], ServiceBinding::local(negate));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", d, "in").unwrap();
    wf.connect(d, "out", n, "in").unwrap();
    wf.connect(n, "out", sink, "in").unwrap();
    wf
}

fn nums(n: usize) -> InputData {
    InputData::new().set("nums", (0..n).map(|i| DataValue::from(i as f64)).collect())
}

fn sorted_sink(r: &WorkflowResult, name: &str) -> Vec<f64> {
    let mut v: Vec<f64> = r
        .sink(name)
        .iter()
        .map(|t| t.value.as_num().unwrap())
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

#[test]
fn bounded_ports_deliver_the_same_results_as_eager_enactment() {
    let wf = chain();
    let inputs = nums(50);
    let mut eager_backend = VirtualBackend::new();
    let eager = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut eager_backend).unwrap();
    let mut backend = VirtualBackend::new();
    // Capacity 64 > stream length: nothing is truncated, so the full
    // result sets are comparable.
    let streamed = run(
        &wf,
        &inputs,
        EnactorConfig::sp_dp().with_port_capacity(64),
        &mut backend,
    )
    .unwrap();
    assert_eq!(sorted_sink(&streamed, "sink"), sorted_sink(&eager, "sink"));
    assert_eq!(streamed.sink_count("sink"), 50);
    assert_eq!(eager.sink_count("sink"), 50);
    assert_eq!(streamed.jobs_submitted, eager.jobs_submitted);
}

#[test]
fn capacity_one_pipeline_completes_with_exact_sink_counts() {
    let wf = chain();
    let mut backend = VirtualBackend::new();
    let r = run(
        &wf,
        &nums(12),
        EnactorConfig::sp_dp().with_port_capacity(1),
        &mut backend,
    )
    .unwrap();
    assert_eq!(r.sink_count("sink"), 12, "every item flowed through");
    // Streaming bounds the retained sample to the port capacity; the
    // tally stays exact.
    assert_eq!(r.sink("sink").len(), 1);
    assert_eq!(r.jobs_submitted, 24);
}

#[test]
fn streaming_truncates_retained_outputs_but_keeps_exact_tallies() {
    let wf = chain();
    let mut backend = VirtualBackend::new();
    let r = run(
        &wf,
        &nums(100),
        EnactorConfig::sp_dp().with_port_capacity(4),
        &mut backend,
    )
    .unwrap();
    assert_eq!(r.sink_count("sink"), 100);
    assert_eq!(r.sink("sink").len(), 4, "retained sample is O(capacity)");
    assert_eq!(r.invocations.len(), 4, "records are O(capacity) too");
}

#[test]
fn full_ports_suspend_the_producer_and_drains_resume_it() {
    let wf = chain();
    let (obs, buffer) = capture();
    let mut backend = VirtualBackend::new();
    let r = run_observed(
        &wf,
        &nums(20),
        EnactorConfig::sp_dp().with_port_capacity(1),
        &mut backend,
        obs,
    )
    .unwrap();
    assert_eq!(r.sink_count("sink"), 20);
    let events = buffer.snapshot();
    let suspends = events
        .iter()
        .filter(|e| e.kind() == "port_suspended")
        .count();
    let resumes = events.iter().filter(|e| e.kind() == "port_resumed").count();
    assert!(suspends > 0, "capacity 1 under 20 items must block");
    assert!(resumes > 0, "a drained port must resume its producer");
    // Transitions are edge-triggered: suspends and resumes interleave,
    // so they differ by at most one.
    assert!(
        suspends.abs_diff(resumes) <= 1,
        "{suspends} suspends vs {resumes} resumes"
    );
    let json = events
        .iter()
        .find(|e| e.kind() == "port_suspended")
        .unwrap()
        .to_json();
    assert!(json.contains(r#""capacity":1"#), "{json}");
    assert!(json.contains(r#""depth":"#), "{json}");
}

#[test]
fn barrier_on_a_bounded_port_still_collects_the_whole_stream() {
    let mean = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let list = inputs[0].value.as_list().ok_or("expected a list")?;
        let sum: f64 = list.iter().map(|v| v.as_num().unwrap()).sum();
        Ok(vec![(
            "out".into(),
            DataValue::from(sum / list.len() as f64),
        )])
    };
    let mut wf = Workflow::new("sync");
    let src = wf.add_source("nums");
    let d = wf.add_service("double", &["in"], &["out"], ServiceBinding::local(double));
    let m = wf.add_service("mean", &["values"], &["out"], ServiceBinding::local(mean));
    wf.set_synchronization(m, true);
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", d, "in").unwrap();
    wf.connect(d, "out", m, "values").unwrap();
    wf.connect(m, "out", sink, "in").unwrap();
    let inputs = InputData::new().set("nums", (1..=8).map(|i| DataValue::from(i as f64)).collect());
    let mut backend = VirtualBackend::new();
    let r = run(
        &wf,
        &inputs,
        EnactorConfig::sp_dp().with_port_capacity(2),
        &mut backend,
    )
    .unwrap();
    // The barrier is a documented unbounded collection point: all 8
    // doubled items reach it despite the bounded upstream edge, and it
    // fires once over the whole stream.
    let out = r.sink("sink");
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].value.as_num(), Some(9.0), "mean of 2..=16");
    assert_eq!(r.sink_count("sink"), 1);
}

#[test]
fn quarantine_under_bounded_ports_frees_the_port_slot() {
    let filter = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        match inputs[0].value.as_str() {
            Some("poison") => Err("poisoned input".into()),
            _ => Ok(vec![("out".into(), inputs[0].value.clone())]),
        }
    };
    let forward = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        Ok(vec![("out".into(), inputs[0].value.clone())])
    };
    let mut wf = Workflow::new("poisoned");
    let src = wf.add_source("s");
    let f = wf.add_service("filter", &["in"], &["out"], ServiceBinding::local(filter));
    let n = wf.add_service("next", &["in"], &["out"], ServiceBinding::local(forward));
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", f, "in").unwrap();
    wf.connect(f, "out", n, "in").unwrap();
    wf.connect(n, "out", sink, "in").unwrap();
    let values: Vec<DataValue> = (0..9)
        .map(|i| {
            if i == 4 {
                "poison".into()
            } else {
                format!("v{i}").into()
            }
        })
        .collect();
    let inputs = InputData::new().set("s", values);
    let ft = FtConfig::from_legacy(0).with_continue_on_error(true);
    let mut backend = VirtualBackend::new();
    let r = run_fault_tolerant(
        &wf,
        &inputs,
        EnactorConfig::sp_dp().with_port_capacity(2),
        &ft,
        &mut backend,
        Obs::off(),
    )
    .expect("quarantine must release the port slot, not wedge the stream");
    assert_eq!(r.quarantined.len(), 1);
    assert_eq!(r.quarantined[0].processor, "filter");
    assert_eq!(
        r.sink_count("sink"),
        8,
        "everything but the poisoned item flowed through the bounded port"
    );
}

#[test]
fn unbounded_cold_path_emits_no_port_events_and_stays_byte_stable() {
    let wf = chain();
    let inputs = nums(16);
    let trace = |_: ()| -> Vec<String> {
        let (obs, buffer) = capture();
        let mut backend = VirtualBackend::new();
        // Default configuration: port_capacity is None, the eager path.
        run_observed(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend, obs).unwrap();
        buffer.snapshot().iter().map(TraceEvent::to_json).collect()
    };
    let first = trace(());
    let second = trace(());
    assert_eq!(first, second, "eager traces are run-to-run byte-identical");
    assert!(
        !first
            .iter()
            .any(|l| l.contains("port_suspended") || l.contains("port_resumed")),
        "unbounded ports must never surface streaming events"
    );
}
