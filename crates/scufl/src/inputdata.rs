//! The input data-set language (paper §4.1): an XML file format that
//! "describes each item of the different inputs of the workflow" so a
//! run can be re-executed on the same data set.

use crate::ScuflError;
use moteur::{DataValue, InputData};
use moteur_xml::Element;

/// Parse an `<inputdata>` document into [`InputData`].
pub fn parse_input_data(text: &str) -> Result<InputData, ScuflError> {
    let root = moteur_xml::parse(text)?;
    if root.name != "inputdata" {
        return Err(ScuflError::new(format!(
            "expected <inputdata>, found <{}>",
            root.name
        )));
    }
    let mut data = InputData::new();
    for input in root.children_named("input") {
        let name = input
            .attr("name")
            .ok_or_else(|| ScuflError::new("<input> requires a name"))?;
        let mut values = Vec::new();
        for item in input.children_named("item") {
            values.push(parse_item(item)?);
        }
        data = data.set(name, values);
    }
    Ok(data)
}

fn parse_item(item: &Element) -> Result<DataValue, ScuflError> {
    match item.attr("type") {
        Some("file") => {
            let gfn = item
                .attr("gfn")
                .ok_or_else(|| ScuflError::new("file item requires gfn"))?;
            let bytes: u64 = item
                .attr("bytes")
                .unwrap_or("0")
                .parse()
                .map_err(|_| ScuflError::new("bad file item bytes"))?;
            Ok(DataValue::File {
                gfn: gfn.to_string(),
                bytes,
            })
        }
        Some("string") => Ok(DataValue::Str(
            item.attr("value")
                .ok_or_else(|| ScuflError::new("string item requires value"))?
                .to_string(),
        )),
        Some("number") => {
            let v: f64 = item
                .attr("value")
                .ok_or_else(|| ScuflError::new("number item requires value"))?
                .parse()
                .map_err(|_| ScuflError::new("bad number item value"))?;
            Ok(DataValue::Num(v))
        }
        other => Err(ScuflError::new(format!("unknown item type {other:?}"))),
    }
}

/// Serialise input streams back to the data-set language. Only
/// file/string/number values are expressible (opaque in-memory values
/// have no on-disk form).
pub fn write_input_data(streams: &[(&str, &[DataValue])]) -> Result<String, ScuflError> {
    let mut root = Element::new("inputdata");
    for (name, values) in streams {
        let mut input = Element::new("input").with_attr("name", *name);
        for v in *values {
            let item = match v {
                DataValue::File { gfn, bytes } => Element::new("item")
                    .with_attr("type", "file")
                    .with_attr("gfn", gfn.clone())
                    .with_attr("bytes", bytes.to_string()),
                DataValue::Str(s) => Element::new("item")
                    .with_attr("type", "string")
                    .with_attr("value", s.clone()),
                DataValue::Num(n) => Element::new("item")
                    .with_attr("type", "number")
                    .with_attr("value", n.to_string()),
                other => {
                    return Err(ScuflError::new(format!(
                        "value {other:?} has no on-disk representation"
                    )))
                }
            };
            input = input.with_child(item);
        }
        root = root.with_child(input);
    }
    Ok(root.to_pretty_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
<inputdata>
  <input name="referenceImage">
    <item type="file" gfn="gfn://img/ref0.hdr" bytes="7800000"/>
    <item type="file" gfn="gfn://img/ref1.hdr" bytes="7800000"/>
  </input>
  <input name="scale">
    <item type="number" value="2"/>
    <item type="string" value="fine"/>
  </input>
</inputdata>"#;

    #[test]
    fn parses_streams_in_order() {
        let d = parse_input_data(DOC).unwrap();
        let imgs = d.get("referenceImage").unwrap();
        assert_eq!(imgs.len(), 2);
        assert_eq!(imgs[0].as_file(), Some(("gfn://img/ref0.hdr", 7_800_000)));
        let scales = d.get("scale").unwrap();
        assert_eq!(scales[0].as_num(), Some(2.0));
        assert_eq!(scales[1].as_str(), Some("fine"));
        assert!(d.get("missing").is_none());
    }

    #[test]
    fn round_trips() {
        let d = parse_input_data(DOC).unwrap();
        let text = write_input_data(&[
            ("referenceImage", d.get("referenceImage").unwrap()),
            ("scale", d.get("scale").unwrap()),
        ])
        .unwrap();
        let d2 = parse_input_data(&text).unwrap();
        assert_eq!(
            d2.get("referenceImage").unwrap(),
            d.get("referenceImage").unwrap()
        );
        assert_eq!(d2.get("scale").unwrap(), d.get("scale").unwrap());
    }

    #[test]
    fn error_cases() {
        assert!(parse_input_data("<x/>")
            .unwrap_err()
            .to_string()
            .contains("expected <inputdata>"));
        assert!(parse_input_data(
            r#"<inputdata><input name="a"><item type="alien"/></input></inputdata>"#
        )
        .unwrap_err()
        .to_string()
        .contains("unknown item type"));
        assert!(parse_input_data(
            r#"<inputdata><input><item type="string" value="x"/></input></inputdata>"#
        )
        .is_err());
        assert!(parse_input_data(
            r#"<inputdata><input name="a"><item type="file"/></input></inputdata>"#
        )
        .is_err());
    }

    #[test]
    fn opaque_values_cannot_be_written() {
        let v = [DataValue::opaque(3u8)];
        let err = write_input_data(&[("x", &v)]).unwrap_err();
        assert!(err.to_string().contains("no on-disk representation"));
    }

    #[test]
    fn empty_stream_is_legal() {
        let d = parse_input_data(r#"<inputdata><input name="empty"/></inputdata>"#).unwrap();
        assert_eq!(d.get("empty").unwrap().len(), 0);
    }
}
