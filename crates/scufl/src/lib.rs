//! # moteur-scufl
//!
//! On-disk languages for MOTEUR-RS, modelled on what the paper's
//! prototype consumes:
//!
//! - a **Scufl-like workflow description language** (§4.1: MOTEUR
//!   adopts Taverna's Simple Concept Unified Flow Language, including
//!   *coordination constraints* used to mark data synchronization);
//! - the **input data-set language** the authors built: "an XML-based
//!   language … to save and store the input data set in order to be
//!   able to re-execute workflows on the same data set".
//!
//! Both parse into the live `moteur` types ([`moteur::Workflow`],
//! [`moteur::InputData`]). Only descriptor-bound services are
//! expressible in XML (in-process Rust closures have no on-disk form —
//! the same way the original MOTEUR can only enact what Scufl can
//! name).
//!
//! ```
//! use moteur_scufl::{parse_workflow, parse_input_data};
//!
//! let wf = parse_workflow(r#"
//!   <scufl name="demo">
//!     <source name="images"/>
//!     <processor name="crestLines" compute="90">
//!       <executable name="CrestLines.pl">
//!         <value value="CrestLines.pl"/>
//!         <input name="floating_image" option="-im1"><access type="GFN"/></input>
//!         <input name="scale" option="-s"/>
//!         <output name="crest" option="-c1"><access type="GFN"/></output>
//!       </executable>
//!       <param slot="scale" value="2"/>
//!     </processor>
//!     <sink name="results"/>
//!     <link from="images:out" to="crestLines:floating_image"/>
//!     <link from="crestLines:crest" to="results:in"/>
//!   </scufl>"#).unwrap();
//! assert_eq!(wf.processors.len(), 3);
//!
//! let data = parse_input_data(r#"
//!   <inputdata>
//!     <input name="images"><item type="file" gfn="gfn://img/0" bytes="7800000"/></input>
//!   </inputdata>"#).unwrap();
//! assert_eq!(data.get("images").unwrap().len(), 1);
//! ```

pub mod inputdata;
pub mod workflow;

pub use inputdata::{parse_input_data, write_input_data};
pub use workflow::{lint_source, parse_workflow, parse_workflow_lenient, write_workflow};

/// Error type shared by the two languages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScuflError {
    pub message: String,
}

impl ScuflError {
    pub fn new(message: impl Into<String>) -> Self {
        ScuflError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ScuflError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scufl error: {}", self.message)
    }
}

impl std::error::Error for ScuflError {}

impl From<moteur_xml::XmlError> for ScuflError {
    fn from(e: moteur_xml::XmlError) -> Self {
        ScuflError::new(e.to_string())
    }
}

impl From<moteur::MoteurError> for ScuflError {
    fn from(e: moteur::MoteurError) -> Self {
        ScuflError::new(e.to_string())
    }
}

impl From<moteur_wrapper::WrapperError> for ScuflError {
    fn from(e: moteur_wrapper::WrapperError) -> Self {
        ScuflError::new(e.to_string())
    }
}
