//! The Scufl-like workflow language.
//!
//! ```xml
//! <scufl name="bronze">
//!   <source name="referenceImage"/>
//!   <processor name="crestLines" compute="90" iteration="dot">
//!     <executable name="CrestLines.pl"> … Fig. 8 descriptor … </executable>
//!     <param slot="scale" value="2"/>
//!     <outputsize slot="crest_reference" bytes="400000"/>
//!   </processor>
//!   <processor name="MultiTransfoTest" compute="120" sync="true"> … </processor>
//!   <sink name="accuracy_rotation"/>
//!   <link from="referenceImage:out" to="crestLines:reference_image"/>
//!   <coordination from="crestMatch" to="MultiTransfoTest"/>
//! </scufl>
//! ```
//!
//! A processor's input ports are its descriptor's input slots minus the
//! fixed `<param>`s; its output ports are the descriptor's output
//! slots. Stochastic compute costs are supported through a `<cost>`
//! child (`lognormal`, `uniform`, `exponential`, `constant`).

use crate::ScuflError;
use moteur::lint::{Diagnostic, Severity};
use moteur::{
    CostModel, IterationStrategy, ProcessorKind, ServiceBinding, ServiceProfile, Workflow,
};
use moteur_gridsim::Distribution;
use moteur_wrapper::ExecutableDescriptor;
use moteur_xml::Element;

/// Parse a workflow document strictly: the first parse-stage diagnostic
/// becomes the error, and the result is validated.
pub fn parse_workflow(text: &str) -> Result<Workflow, ScuflError> {
    let (wf, diags) = parse_workflow_lenient(text)?;
    if let Some(d) = diags.iter().find(|d| d.severity == Severity::Error) {
        return Err(ScuflError::new(d.message.clone()));
    }
    wf.validate()?;
    Ok(wf)
}

/// Parse a workflow document leniently: constructs that fail to parse
/// are skipped and reported as `M0xx` [`Diagnostic`]s (codes M060–M064,
/// plus M001 for unresolved link/coordination names) carrying byte
/// spans into `text`. `Err` is reserved for *fatal* conditions — XML
/// that does not parse at all, or a root element other than `<scufl>`.
///
/// The returned workflow is **not** validated; `moteur lint` runs the
/// graph-stage rules on it and merges both diagnostic streams.
pub fn parse_workflow_lenient(text: &str) -> Result<(Workflow, Vec<Diagnostic>), ScuflError> {
    let root = moteur_xml::parse(text)?;
    if root.name != "scufl" {
        return Err(ScuflError::new(format!(
            "expected <scufl>, found <{}>",
            root.name
        )));
    }
    Ok(build_workflow(&root))
}

/// Lenient parse for `moteur lint`: fatal conditions become a single
/// `M000` diagnostic (with the XML error's position when available)
/// instead of an `Err`, so the linter always has something to render.
pub fn lint_source(text: &str) -> (Option<Workflow>, Vec<Diagnostic>) {
    match moteur_xml::parse(text) {
        Err(e) => {
            let d = Diagnostic::error("M000", e.message())
                .primary(e.span(), "XML does not parse beyond this point")
                .with_help("fix the document's well-formedness before linting workflow rules");
            (None, vec![d])
        }
        Ok(root) if root.name != "scufl" => {
            let d = Diagnostic::error("M000", format!("expected <scufl>, found <{}>", root.name))
                .primary(root.span, "root element declared here");
            (None, vec![d])
        }
        Ok(root) => {
            let (wf, diags) = build_workflow(&root);
            (Some(wf), diags)
        }
    }
}

fn build_workflow(root: &Element) -> (Workflow, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut wf = Workflow::new(root.attr("name").unwrap_or("workflow"));
    wf.spans.workflow = root.span;
    for el in root.elements() {
        match el.name.as_str() {
            "source" => {
                if let Some(name) = required(el, "name", &mut diags) {
                    let id = wf.add_source(&name);
                    wf.spans.processors.push(el.span);
                    if let Some(bytes) = el.attr("bytes") {
                        match bytes.parse::<u64>() {
                            Ok(b) => wf.set_item_bytes(id, b),
                            Err(_) => diags.push(
                                Diagnostic::error("M062", "bad source bytes")
                                    .primary(el.span, format!("`{bytes}` is not an integer"))
                                    .with_help("declare the per-item size as a byte count"),
                            ),
                        }
                    }
                }
            }
            "sink" => {
                if let Some(name) = required(el, "name", &mut diags) {
                    wf.add_sink(&name);
                    wf.spans.processors.push(el.span);
                }
            }
            "processor" => parse_processor(&mut wf, el, &mut diags),
            "link" | "coordination" => {} // second pass
            other => diags.push(
                Diagnostic::error("M060", format!("unknown element <{other}>"))
                    .primary(el.span, "not a scufl element")
                    .with_help("expected <source>, <sink>, <processor>, <link> or <coordination>"),
            ),
        }
    }
    for el in root.children_named("link") {
        let Some((fp, fport)) = endpoint(el, "from", &mut diags) else {
            continue;
        };
        let Some((tp, tport)) = endpoint(el, "to", &mut diags) else {
            continue;
        };
        let Some(from) = resolve(&wf, &fp, el, "link from unknown processor", &mut diags) else {
            continue;
        };
        let Some(to) = resolve(&wf, &tp, el, "link to unknown processor", &mut diags) else {
            continue;
        };
        match wf.connect(from, &fport, to, &tport) {
            Ok(()) => wf.spans.links.push(el.span),
            Err(e) => diags.push(
                Diagnostic::error("M001", e.message().to_string())
                    .primary(el.span, "link declared here"),
            ),
        }
    }
    for el in root.children_named("coordination") {
        let Some(before) = required(el, "from", &mut diags) else {
            continue;
        };
        let Some(after) = required(el, "to", &mut diags) else {
            continue;
        };
        let Some(b) = resolve(&wf, &before, el, "coordination from unknown", &mut diags) else {
            continue;
        };
        let Some(a) = resolve(&wf, &after, el, "coordination to unknown", &mut diags) else {
            continue;
        };
        wf.add_control(b, a);
        wf.spans.control.push(el.span);
    }
    (wf, diags)
}

fn parse_processor(wf: &mut Workflow, el: &Element, diags: &mut Vec<Diagnostic>) {
    let Some(name) = required(el, "name", diags) else {
        return;
    };
    let Some(exe) = el.child("executable") else {
        diags.push(
            Diagnostic::error("M064", format!("processor `{name}` needs an <executable>"))
                .primary(el.span, "no descriptor in this processor")
                .with_help("embed a Fig. 8 <executable> descriptor"),
        );
        return;
    };
    let descriptor = match ExecutableDescriptor::from_xml(exe) {
        Ok(d) => d,
        Err(e) => {
            diags.push(
                Diagnostic::error("M064", e.to_string())
                    .primary(exe.span_or(el.span), "descriptor declared here"),
            );
            return;
        }
    };

    let mut profile = ServiceProfile::new(0.0);
    if let Some(cost_el) = el.child("cost") {
        // A bad <cost> falls back to zero so the processor still
        // exists for downstream rules; strict parsing stops here.
        profile = profile.with_cost(parse_cost(cost_el, diags).unwrap_or(CostModel::Fixed(0.0)));
    } else {
        match el.attr("compute").unwrap_or("0").parse::<f64>() {
            Ok(compute) => profile = profile.with_cost(CostModel::Fixed(compute)),
            Err(_) => diags.push(
                Diagnostic::error("M062", format!("bad compute value on `{name}`"))
                    .primary(el.attr_span("compute").unwrap_or(el.span), "not a number"),
            ),
        }
    }
    let mut param_spans = Vec::new();
    for p in el.children_named("param") {
        let (Some(slot), Some(value)) = (required(p, "slot", diags), required(p, "value", diags))
        else {
            continue;
        };
        param_spans.push((slot.clone(), p.span));
        profile = profile.with_fixed_param(slot, value);
    }
    let mut outputsize_spans = Vec::new();
    for o in el.children_named("outputsize") {
        let (Some(slot), Some(bytes)) = (required(o, "slot", diags), required(o, "bytes", diags))
        else {
            continue;
        };
        let Ok(bytes) = bytes.parse::<u64>() else {
            diags.push(
                Diagnostic::error("M062", "bad outputsize bytes")
                    .primary(o.attr_span("bytes").unwrap_or(o.span), "not an integer"),
            );
            continue;
        };
        outputsize_spans.push((slot.clone(), o.span));
        profile = profile.with_output_bytes(slot, bytes);
    }

    // Ports: descriptor slots minus fixed params.
    let fixed: Vec<String> = profile
        .fixed_params
        .iter()
        .map(|(s, _)| s.clone())
        .collect();
    let inputs: Vec<String> = descriptor
        .inputs
        .iter()
        .map(|i| i.name.clone())
        .filter(|n| !fixed.contains(n))
        .collect();
    let outputs: Vec<String> = descriptor.outputs.iter().map(|o| o.name.clone()).collect();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let output_refs: Vec<&str> = outputs.iter().map(String::as_str).collect();

    let id = wf.add_service(
        &name,
        &input_refs,
        &output_refs,
        ServiceBinding::descriptor(descriptor, profile),
    );
    wf.spans.processors.push(el.span);
    for (slot, span) in param_spans {
        wf.spans.params.push((id, slot, span));
    }
    for (slot, span) in outputsize_spans {
        wf.spans.outputsizes.push((id, slot, span));
    }
    match el.attr("iteration").unwrap_or("dot") {
        "dot" => wf.set_iteration(id, IterationStrategy::Dot),
        "cross" => wf.set_iteration(id, IterationStrategy::Cross),
        other => diags.push(
            Diagnostic::error("M062", format!("unknown iteration `{other}`"))
                .primary(
                    el.attr_span("iteration").unwrap_or(el.span),
                    "not an iteration strategy",
                )
                .with_help("use `dot` or `cross` (paper Fig. 3)"),
        ),
    }
    if el.attr("sync") == Some("true") {
        wf.set_synchronization(id, true);
    }
}

fn parse_cost(el: &Element, diags: &mut Vec<Diagnostic>) -> Option<CostModel> {
    let mut get = |a: &str| -> Option<f64> {
        let v = required(el, a, diags)?;
        match v.parse() {
            Ok(v) => Some(v),
            Err(_) => {
                diags.push(
                    Diagnostic::error("M062", format!("bad <cost> attribute `{a}`"))
                        .primary(el.attr_span(a).unwrap_or(el.span), "not a number"),
                );
                None
            }
        }
    };
    let dist = match el.attr("type") {
        Some("constant") => Distribution::Constant(get("value")?),
        Some("uniform") => Distribution::Uniform {
            lo: get("lo")?,
            hi: get("hi")?,
        },
        Some("exponential") => Distribution::Exponential { mean: get("mean")? },
        Some("lognormal") => Distribution::LogNormal {
            median: get("median")?,
            sigma: get("sigma")?,
        },
        other => {
            diags.push(
                Diagnostic::error("M062", format!("unknown cost type {other:?}"))
                    .primary(el.span, "declared here")
                    .with_help("use constant, uniform, exponential or lognormal"),
            );
            return None;
        }
    };
    Some(CostModel::Stochastic(dist))
}

fn endpoint(el: &Element, attr: &str, diags: &mut Vec<Diagnostic>) -> Option<(String, String)> {
    let v = required(el, attr, diags)?;
    match v.split_once(':') {
        Some((proc, port)) => Some((proc.to_string(), port.to_string())),
        None => {
            diags.push(
                Diagnostic::error("M063", format!("endpoint `{v}` must be `processor:port`"))
                    .primary(el.attr_span(attr).unwrap_or(el.span), "malformed endpoint"),
            );
            None
        }
    }
}

fn resolve(
    wf: &Workflow,
    name: &str,
    el: &Element,
    what: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<moteur::ProcId> {
    match wf.find(name) {
        Some(id) => Some(id),
        None => {
            diags.push(
                Diagnostic::error("M001", format!("{what} `{name}`"))
                    .primary(el.span, "declared here")
                    .with_help("every endpoint must name a declared source, sink or processor"),
            );
            None
        }
    }
}

fn required(el: &Element, attr: &str, diags: &mut Vec<Diagnostic>) -> Option<String> {
    match el.attr(attr) {
        Some(v) => Some(v.to_string()),
        None => {
            diags.push(
                Diagnostic::error("M061", format!("<{}> requires attribute `{attr}`", el.name))
                    .primary(el.span, "declared here"),
            );
            None
        }
    }
}

/// Serialise a workflow back to the Scufl dialect. Only descriptor
/// bindings are expressible; local or grouped bindings are an error
/// (grouping is a run-time transform, not a document feature).
pub fn write_workflow(wf: &Workflow) -> Result<String, ScuflError> {
    let mut root = Element::new("scufl").with_attr("name", wf.name.clone());
    for p in &wf.processors {
        match p.kind {
            ProcessorKind::Source => {
                let mut el = Element::new("source").with_attr("name", p.name.clone());
                // Attribute only when set, so documents without size
                // declarations round-trip unchanged.
                if let Some(bytes) = p.item_bytes {
                    el = el.with_attr("bytes", bytes.to_string());
                }
                root = root.with_child(el);
            }
            ProcessorKind::Sink => {
                root = root.with_child(Element::new("sink").with_attr("name", p.name.clone()));
            }
            ProcessorKind::Service => {
                let Some(ServiceBinding::Descriptor {
                    descriptor,
                    profile,
                }) = &p.binding
                else {
                    return Err(ScuflError::new(format!(
                        "processor `{}` has a non-descriptor binding and cannot be serialised",
                        p.name
                    )));
                };
                let mut el = Element::new("processor").with_attr("name", p.name.clone());
                el = el.with_attr(
                    "iteration",
                    match p.iteration {
                        IterationStrategy::Dot => "dot",
                        IterationStrategy::Cross => "cross",
                    },
                );
                if p.synchronization {
                    el = el.with_attr("sync", "true");
                }
                match &profile.compute {
                    CostModel::Fixed(v) => {
                        el = el.with_attr("compute", format!("{v}"));
                    }
                    CostModel::Stochastic(d) => {
                        el = el.with_child(write_cost(d)?);
                    }
                    CostModel::ByIndex(_) => {
                        return Err(ScuflError::new(format!(
                            "processor `{}` has a programmatic cost model",
                            p.name
                        )))
                    }
                }
                let desc_doc = descriptor.to_xml();
                let exe = desc_doc
                    .child("executable")
                    .expect("descriptor serialisation always nests <executable>")
                    .clone();
                el = el.with_child(exe);
                for (slot, value) in &profile.fixed_params {
                    el = el.with_child(
                        Element::new("param")
                            .with_attr("slot", slot.clone())
                            .with_attr("value", value.clone()),
                    );
                }
                for (slot, bytes) in &profile.output_bytes {
                    el = el.with_child(
                        Element::new("outputsize")
                            .with_attr("slot", slot.clone())
                            .with_attr("bytes", bytes.to_string()),
                    );
                }
                root = root.with_child(el);
            }
        }
    }
    for l in &wf.links {
        let fp = &wf.processors[l.from.proc.0];
        let tp = &wf.processors[l.to.proc.0];
        root = root.with_child(
            Element::new("link")
                .with_attr("from", format!("{}:{}", fp.name, fp.outputs[l.from.port]))
                .with_attr("to", format!("{}:{}", tp.name, tp.inputs[l.to.port])),
        );
    }
    for (b, a) in &wf.control {
        root = root.with_child(
            Element::new("coordination")
                .with_attr("from", wf.processors[b.0].name.clone())
                .with_attr("to", wf.processors[a.0].name.clone()),
        );
    }
    Ok(root.to_pretty_string())
}

fn write_cost(d: &Distribution) -> Result<Element, ScuflError> {
    let el = Element::new("cost");
    Ok(match d {
        Distribution::Constant(v) => el
            .with_attr("type", "constant")
            .with_attr("value", v.to_string()),
        Distribution::Uniform { lo, hi } => el
            .with_attr("type", "uniform")
            .with_attr("lo", lo.to_string())
            .with_attr("hi", hi.to_string()),
        Distribution::Exponential { mean } => el
            .with_attr("type", "exponential")
            .with_attr("mean", mean.to_string()),
        Distribution::LogNormal { median, sigma } => el
            .with_attr("type", "lognormal")
            .with_attr("median", median.to_string())
            .with_attr("sigma", sigma.to_string()),
        other => {
            return Err(ScuflError::new(format!(
                "cost distribution {other:?} not expressible"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
<scufl name="demo">
  <source name="images"/>
  <processor name="crestLines" compute="90">
    <executable name="CrestLines.pl">
      <value value="CrestLines.pl"/>
      <input name="img" option="-im1"><access type="GFN"/></input>
      <input name="scale" option="-s"/>
      <output name="crest" option="-c1"><access type="GFN"/></output>
    </executable>
    <param slot="scale" value="2"/>
    <outputsize slot="crest" bytes="400000"/>
  </processor>
  <sink name="results"/>
  <link from="images:out" to="crestLines:img"/>
  <link from="crestLines:crest" to="results:in"/>
</scufl>"#;

    #[test]
    fn parses_a_valid_document() {
        let wf = parse_workflow(DEMO).unwrap();
        assert_eq!(wf.name, "demo");
        assert_eq!(wf.processors.len(), 3);
        assert_eq!(wf.links.len(), 2);
        let p = wf.processor(wf.find("crestLines").unwrap());
        // `scale` is a fixed param, so not an input port.
        assert_eq!(p.inputs, vec!["img"]);
        assert_eq!(p.outputs, vec!["crest"]);
        match p.binding.as_ref().unwrap() {
            ServiceBinding::Descriptor { profile, .. } => {
                assert_eq!(profile.fixed_param("scale"), Some("2"));
                assert_eq!(profile.output_size("crest"), 400_000);
                assert!(matches!(profile.compute, CostModel::Fixed(v) if v == 90.0));
            }
            other => panic!("unexpected binding {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_the_writer() {
        let wf = parse_workflow(DEMO).unwrap();
        let text = write_workflow(&wf).unwrap();
        let wf2 = parse_workflow(&text).unwrap();
        assert_eq!(wf2.processors.len(), wf.processors.len());
        assert_eq!(wf2.links.len(), wf.links.len());
        let p = wf2.processor(wf2.find("crestLines").unwrap());
        assert_eq!(p.inputs, vec!["img"]);
    }

    #[test]
    fn source_bytes_parses_and_round_trips() {
        let text = DEMO.replace(
            r#"<source name="images"/>"#,
            r#"<source name="images" bytes="7864320"/>"#,
        );
        let wf = parse_workflow(&text).unwrap();
        let src = wf.processor(wf.find("images").unwrap());
        assert_eq!(src.item_bytes, Some(7_864_320));

        let written = write_workflow(&wf).unwrap();
        assert!(written.contains(r#"bytes="7864320""#));
        let wf2 = parse_workflow(&written).unwrap();
        let src2 = wf2.processor(wf2.find("images").unwrap());
        assert_eq!(src2.item_bytes, Some(7_864_320));

        // Documents without the attribute keep emitting none.
        let plain = parse_workflow(DEMO).unwrap();
        assert!(!write_workflow(&plain).unwrap().contains("bytes=\"7"));
    }

    #[test]
    fn bad_source_bytes_is_rejected() {
        let text = DEMO.replace(
            r#"<source name="images"/>"#,
            r#"<source name="images" bytes="lots"/>"#,
        );
        let (_, diags) = parse_workflow_lenient(&text).unwrap();
        assert!(diags.iter().any(|d| d.code == "M062"));
    }

    #[test]
    fn sync_and_iteration_attributes() {
        let text = DEMO.replace(
            r#"<processor name="crestLines" compute="90">"#,
            r#"<processor name="crestLines" compute="90" sync="true" iteration="cross">"#,
        );
        let wf = parse_workflow(&text).unwrap();
        let p = wf.processor(wf.find("crestLines").unwrap());
        assert!(p.synchronization);
        assert_eq!(p.iteration, IterationStrategy::Cross);
    }

    #[test]
    fn stochastic_cost_parses_and_round_trips() {
        let text = DEMO.replace(
            r#"<processor name="crestLines" compute="90">"#,
            r#"<processor name="crestLines"><cost type="lognormal" median="90" sigma="0.5"/>"#,
        );
        let wf = parse_workflow(&text).unwrap();
        let p = wf.processor(wf.find("crestLines").unwrap());
        match p.binding.as_ref().unwrap() {
            ServiceBinding::Descriptor { profile, .. } => match &profile.compute {
                CostModel::Stochastic(Distribution::LogNormal { median, sigma }) => {
                    assert_eq!(*median, 90.0);
                    assert_eq!(*sigma, 0.5);
                }
                other => panic!("unexpected cost {other:?}"),
            },
            _ => unreachable!(),
        }
        let round = parse_workflow(&write_workflow(&wf).unwrap()).unwrap();
        assert_eq!(round.processors.len(), 3);
    }

    #[test]
    fn coordination_constraints_parse() {
        let text = DEMO.replace(
            "</scufl>",
            r#"<coordination from="images" to="crestLines"/></scufl>"#,
        );
        let wf = parse_workflow(&text).unwrap();
        assert_eq!(wf.control.len(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(parse_workflow("<notscufl/>")
            .unwrap_err()
            .to_string()
            .contains("expected <scufl>"));
        assert!(parse_workflow(r#"<scufl><mystery/></scufl>"#)
            .unwrap_err()
            .to_string()
            .contains("unknown element"));
        let bad_link = DEMO.replace("images:out", "nope:out");
        assert!(parse_workflow(&bad_link)
            .unwrap_err()
            .to_string()
            .contains("unknown processor"));
        let bad_endpoint = DEMO.replace("images:out", "images");
        assert!(parse_workflow(&bad_endpoint)
            .unwrap_err()
            .to_string()
            .contains("must be `processor:port`"));
        let bad_iter = DEMO.replace(r#"compute="90""#, r#"compute="90" iteration="zip""#);
        assert!(parse_workflow(&bad_iter)
            .unwrap_err()
            .to_string()
            .contains("unknown iteration"));
    }

    #[test]
    fn unconnected_port_fails_validation() {
        let text = DEMO.replace(r#"<link from="images:out" to="crestLines:img"/>"#, "");
        assert!(parse_workflow(&text)
            .unwrap_err()
            .to_string()
            .contains("not connected"));
    }

    #[test]
    fn lenient_parse_collects_diagnostics_instead_of_stopping() {
        let text = DEMO
            .replace(
                "<sink name=\"results\"/>",
                "<sink name=\"results\"/><mystery/>",
            )
            .replace("images:out", "nope:out");
        let (wf, diags) = parse_workflow_lenient(&text).unwrap();
        // Both problems reported, and the rest of the document parsed.
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["M060", "M001"]);
        assert_eq!(wf.processors.len(), 3);
        assert_eq!(wf.links.len(), 1, "the bad link was skipped");
        // Spans resolve to the offending constructs in the source.
        let m060 = &text[diags[0].primary_span().start..diags[0].primary_span().end];
        assert_eq!(m060, "<mystery/>");
        let m001 = &text[diags[1].primary_span().start..diags[1].primary_span().end];
        assert!(m001.starts_with("<link") && m001.contains("nope:out"));
    }

    #[test]
    fn lenient_parse_populates_source_spans() {
        let (wf, diags) = parse_workflow_lenient(DEMO).unwrap();
        assert!(diags.is_empty());
        assert_eq!(wf.spans.processors.len(), wf.processors.len());
        let crest = wf.find("crestLines").unwrap();
        let pspan = wf.spans.processor(crest);
        assert!(DEMO[pspan.start..pspan.end].starts_with("<processor name=\"crestLines\""));
        assert_eq!(wf.spans.links.len(), wf.links.len());
        assert!(DEMO[wf.spans.link(0).start..wf.spans.link(0).end].starts_with("<link"));
        let param = wf.spans.param(crest, "scale");
        assert!(DEMO[param.start..param.end].starts_with("<param slot=\"scale\""));
        let osize = wf.spans.outputsize(crest, "crest");
        assert!(DEMO[osize.start..osize.end].starts_with("<outputsize"));
    }

    #[test]
    fn lint_source_reports_fatal_conditions_as_m000() {
        let (wf, diags) = lint_source("<scufl><oops</scufl>");
        assert!(wf.is_none());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "M000");
        let (wf, diags) = lint_source("<notscufl/>");
        assert!(wf.is_none());
        assert_eq!(diags[0].code, "M000");
        assert!(diags[0].message.contains("expected <scufl>"));
        let (wf, diags) = lint_source(DEMO);
        assert!(wf.is_some());
        assert!(diags.is_empty());
    }

    #[test]
    fn local_bindings_cannot_be_serialised() {
        let mut wf = parse_workflow(DEMO).unwrap();
        let id = wf.find("crestLines").unwrap();
        let svc = |_: &[moteur::Token]| -> Result<Vec<(String, moteur::DataValue)>, String> {
            Ok(vec![])
        };
        wf.processor_mut(id).binding = Some(ServiceBinding::local(svc));
        assert!(write_workflow(&wf)
            .unwrap_err()
            .to_string()
            .contains("non-descriptor"));
    }
}
