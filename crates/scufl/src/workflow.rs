//! The Scufl-like workflow language.
//!
//! ```xml
//! <scufl name="bronze">
//!   <source name="referenceImage"/>
//!   <processor name="crestLines" compute="90" iteration="dot">
//!     <executable name="CrestLines.pl"> … Fig. 8 descriptor … </executable>
//!     <param slot="scale" value="2"/>
//!     <outputsize slot="crest_reference" bytes="400000"/>
//!   </processor>
//!   <processor name="MultiTransfoTest" compute="120" sync="true"> … </processor>
//!   <sink name="accuracy_rotation"/>
//!   <link from="referenceImage:out" to="crestLines:reference_image"/>
//!   <coordination from="crestMatch" to="MultiTransfoTest"/>
//! </scufl>
//! ```
//!
//! A processor's input ports are its descriptor's input slots minus the
//! fixed `<param>`s; its output ports are the descriptor's output
//! slots. Stochastic compute costs are supported through a `<cost>`
//! child (`lognormal`, `uniform`, `exponential`, `constant`).

use crate::ScuflError;
use moteur::{
    CostModel, IterationStrategy, ProcessorKind, ServiceBinding, ServiceProfile, Workflow,
};
use moteur_gridsim::Distribution;
use moteur_wrapper::ExecutableDescriptor;
use moteur_xml::Element;

/// Parse a workflow document. The result is validated.
pub fn parse_workflow(text: &str) -> Result<Workflow, ScuflError> {
    let root = moteur_xml::parse(text)?;
    if root.name != "scufl" {
        return Err(ScuflError::new(format!(
            "expected <scufl>, found <{}>",
            root.name
        )));
    }
    let mut wf = Workflow::new(root.attr("name").unwrap_or("workflow"));
    for el in root.elements() {
        match el.name.as_str() {
            "source" => {
                wf.add_source(required(el, "name")?);
            }
            "sink" => {
                wf.add_sink(required(el, "name")?);
            }
            "processor" => {
                parse_processor(&mut wf, el)?;
            }
            "link" | "coordination" => {} // second pass
            other => return Err(ScuflError::new(format!("unknown element <{other}>"))),
        }
    }
    for el in root.children_named("link") {
        let (fp, fport) = endpoint(el, "from")?;
        let (tp, tport) = endpoint(el, "to")?;
        let from = wf
            .find(&fp)
            .ok_or_else(|| ScuflError::new(format!("link from unknown processor `{fp}`")))?;
        let to = wf
            .find(&tp)
            .ok_or_else(|| ScuflError::new(format!("link to unknown processor `{tp}`")))?;
        wf.connect(from, &fport, to, &tport)?;
    }
    for el in root.children_named("coordination") {
        let before = required(el, "from")?;
        let after = required(el, "to")?;
        let b = wf
            .find(&before)
            .ok_or_else(|| ScuflError::new(format!("coordination from unknown `{before}`")))?;
        let a = wf
            .find(&after)
            .ok_or_else(|| ScuflError::new(format!("coordination to unknown `{after}`")))?;
        wf.add_control(b, a);
    }
    wf.validate()?;
    Ok(wf)
}

fn parse_processor(wf: &mut Workflow, el: &Element) -> Result<(), ScuflError> {
    let name = required(el, "name")?;
    let exe = el
        .child("executable")
        .ok_or_else(|| ScuflError::new(format!("processor `{name}` needs an <executable>")))?;
    let descriptor = ExecutableDescriptor::from_xml(exe)?;

    let mut profile = ServiceProfile::new(0.0);
    if let Some(cost_el) = el.child("cost") {
        profile = profile.with_cost(parse_cost(cost_el)?);
    } else {
        let compute: f64 = el
            .attr("compute")
            .unwrap_or("0")
            .parse()
            .map_err(|_| ScuflError::new(format!("bad compute value on `{name}`")))?;
        profile = profile.with_cost(CostModel::Fixed(compute));
    }
    for p in el.children_named("param") {
        profile = profile.with_fixed_param(required(p, "slot")?, required(p, "value")?);
    }
    for o in el.children_named("outputsize") {
        let bytes: u64 = required(o, "bytes")?
            .parse()
            .map_err(|_| ScuflError::new("bad outputsize bytes"))?;
        profile = profile.with_output_bytes(required(o, "slot")?, bytes);
    }

    // Ports: descriptor slots minus fixed params.
    let fixed: Vec<String> = profile
        .fixed_params
        .iter()
        .map(|(s, _)| s.clone())
        .collect();
    let inputs: Vec<String> = descriptor
        .inputs
        .iter()
        .map(|i| i.name.clone())
        .filter(|n| !fixed.contains(n))
        .collect();
    let outputs: Vec<String> = descriptor.outputs.iter().map(|o| o.name.clone()).collect();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let output_refs: Vec<&str> = outputs.iter().map(String::as_str).collect();

    let id = wf.add_service(
        &name,
        &input_refs,
        &output_refs,
        ServiceBinding::descriptor(descriptor, profile),
    );
    match el.attr("iteration").unwrap_or("dot") {
        "dot" => wf.set_iteration(id, IterationStrategy::Dot),
        "cross" => wf.set_iteration(id, IterationStrategy::Cross),
        other => return Err(ScuflError::new(format!("unknown iteration `{other}`"))),
    }
    if el.attr("sync") == Some("true") {
        wf.set_synchronization(id, true);
    }
    Ok(())
}

fn parse_cost(el: &Element) -> Result<CostModel, ScuflError> {
    let get = |a: &str| -> Result<f64, ScuflError> {
        required(el, a)?
            .parse()
            .map_err(|_| ScuflError::new(format!("bad <cost> attribute `{a}`")))
    };
    let dist = match el.attr("type") {
        Some("constant") => Distribution::Constant(get("value")?),
        Some("uniform") => Distribution::Uniform {
            lo: get("lo")?,
            hi: get("hi")?,
        },
        Some("exponential") => Distribution::Exponential { mean: get("mean")? },
        Some("lognormal") => Distribution::LogNormal {
            median: get("median")?,
            sigma: get("sigma")?,
        },
        other => return Err(ScuflError::new(format!("unknown cost type {other:?}"))),
    };
    Ok(CostModel::Stochastic(dist))
}

fn endpoint(el: &Element, attr: &str) -> Result<(String, String), ScuflError> {
    let v = required(el, attr)?;
    let (proc, port) = v
        .split_once(':')
        .ok_or_else(|| ScuflError::new(format!("endpoint `{v}` must be `processor:port`")))?;
    Ok((proc.to_string(), port.to_string()))
}

fn required(el: &Element, attr: &str) -> Result<String, ScuflError> {
    el.attr(attr)
        .map(str::to_string)
        .ok_or_else(|| ScuflError::new(format!("<{}> requires attribute `{attr}`", el.name)))
}

/// Serialise a workflow back to the Scufl dialect. Only descriptor
/// bindings are expressible; local or grouped bindings are an error
/// (grouping is a run-time transform, not a document feature).
pub fn write_workflow(wf: &Workflow) -> Result<String, ScuflError> {
    let mut root = Element::new("scufl").with_attr("name", wf.name.clone());
    for p in &wf.processors {
        match p.kind {
            ProcessorKind::Source => {
                root = root.with_child(Element::new("source").with_attr("name", p.name.clone()));
            }
            ProcessorKind::Sink => {
                root = root.with_child(Element::new("sink").with_attr("name", p.name.clone()));
            }
            ProcessorKind::Service => {
                let Some(ServiceBinding::Descriptor {
                    descriptor,
                    profile,
                }) = &p.binding
                else {
                    return Err(ScuflError::new(format!(
                        "processor `{}` has a non-descriptor binding and cannot be serialised",
                        p.name
                    )));
                };
                let mut el = Element::new("processor").with_attr("name", p.name.clone());
                el = el.with_attr(
                    "iteration",
                    match p.iteration {
                        IterationStrategy::Dot => "dot",
                        IterationStrategy::Cross => "cross",
                    },
                );
                if p.synchronization {
                    el = el.with_attr("sync", "true");
                }
                match &profile.compute {
                    CostModel::Fixed(v) => {
                        el = el.with_attr("compute", format!("{v}"));
                    }
                    CostModel::Stochastic(d) => {
                        el = el.with_child(write_cost(d)?);
                    }
                    CostModel::ByIndex(_) => {
                        return Err(ScuflError::new(format!(
                            "processor `{}` has a programmatic cost model",
                            p.name
                        )))
                    }
                }
                let desc_doc = descriptor.to_xml();
                let exe = desc_doc
                    .child("executable")
                    .expect("descriptor serialisation always nests <executable>")
                    .clone();
                el = el.with_child(exe);
                for (slot, value) in &profile.fixed_params {
                    el = el.with_child(
                        Element::new("param")
                            .with_attr("slot", slot.clone())
                            .with_attr("value", value.clone()),
                    );
                }
                for (slot, bytes) in &profile.output_bytes {
                    el = el.with_child(
                        Element::new("outputsize")
                            .with_attr("slot", slot.clone())
                            .with_attr("bytes", bytes.to_string()),
                    );
                }
                root = root.with_child(el);
            }
        }
    }
    for l in &wf.links {
        let fp = &wf.processors[l.from.proc.0];
        let tp = &wf.processors[l.to.proc.0];
        root = root.with_child(
            Element::new("link")
                .with_attr("from", format!("{}:{}", fp.name, fp.outputs[l.from.port]))
                .with_attr("to", format!("{}:{}", tp.name, tp.inputs[l.to.port])),
        );
    }
    for (b, a) in &wf.control {
        root = root.with_child(
            Element::new("coordination")
                .with_attr("from", wf.processors[b.0].name.clone())
                .with_attr("to", wf.processors[a.0].name.clone()),
        );
    }
    Ok(root.to_pretty_string())
}

fn write_cost(d: &Distribution) -> Result<Element, ScuflError> {
    let el = Element::new("cost");
    Ok(match d {
        Distribution::Constant(v) => el
            .with_attr("type", "constant")
            .with_attr("value", v.to_string()),
        Distribution::Uniform { lo, hi } => el
            .with_attr("type", "uniform")
            .with_attr("lo", lo.to_string())
            .with_attr("hi", hi.to_string()),
        Distribution::Exponential { mean } => el
            .with_attr("type", "exponential")
            .with_attr("mean", mean.to_string()),
        Distribution::LogNormal { median, sigma } => el
            .with_attr("type", "lognormal")
            .with_attr("median", median.to_string())
            .with_attr("sigma", sigma.to_string()),
        other => {
            return Err(ScuflError::new(format!(
                "cost distribution {other:?} not expressible"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
<scufl name="demo">
  <source name="images"/>
  <processor name="crestLines" compute="90">
    <executable name="CrestLines.pl">
      <value value="CrestLines.pl"/>
      <input name="img" option="-im1"><access type="GFN"/></input>
      <input name="scale" option="-s"/>
      <output name="crest" option="-c1"><access type="GFN"/></output>
    </executable>
    <param slot="scale" value="2"/>
    <outputsize slot="crest" bytes="400000"/>
  </processor>
  <sink name="results"/>
  <link from="images:out" to="crestLines:img"/>
  <link from="crestLines:crest" to="results:in"/>
</scufl>"#;

    #[test]
    fn parses_a_valid_document() {
        let wf = parse_workflow(DEMO).unwrap();
        assert_eq!(wf.name, "demo");
        assert_eq!(wf.processors.len(), 3);
        assert_eq!(wf.links.len(), 2);
        let p = wf.processor(wf.find("crestLines").unwrap());
        // `scale` is a fixed param, so not an input port.
        assert_eq!(p.inputs, vec!["img"]);
        assert_eq!(p.outputs, vec!["crest"]);
        match p.binding.as_ref().unwrap() {
            ServiceBinding::Descriptor { profile, .. } => {
                assert_eq!(profile.fixed_param("scale"), Some("2"));
                assert_eq!(profile.output_size("crest"), 400_000);
                assert!(matches!(profile.compute, CostModel::Fixed(v) if v == 90.0));
            }
            other => panic!("unexpected binding {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_the_writer() {
        let wf = parse_workflow(DEMO).unwrap();
        let text = write_workflow(&wf).unwrap();
        let wf2 = parse_workflow(&text).unwrap();
        assert_eq!(wf2.processors.len(), wf.processors.len());
        assert_eq!(wf2.links.len(), wf.links.len());
        let p = wf2.processor(wf2.find("crestLines").unwrap());
        assert_eq!(p.inputs, vec!["img"]);
    }

    #[test]
    fn sync_and_iteration_attributes() {
        let text = DEMO.replace(
            r#"<processor name="crestLines" compute="90">"#,
            r#"<processor name="crestLines" compute="90" sync="true" iteration="cross">"#,
        );
        let wf = parse_workflow(&text).unwrap();
        let p = wf.processor(wf.find("crestLines").unwrap());
        assert!(p.synchronization);
        assert_eq!(p.iteration, IterationStrategy::Cross);
    }

    #[test]
    fn stochastic_cost_parses_and_round_trips() {
        let text = DEMO.replace(
            r#"<processor name="crestLines" compute="90">"#,
            r#"<processor name="crestLines"><cost type="lognormal" median="90" sigma="0.5"/>"#,
        );
        let wf = parse_workflow(&text).unwrap();
        let p = wf.processor(wf.find("crestLines").unwrap());
        match p.binding.as_ref().unwrap() {
            ServiceBinding::Descriptor { profile, .. } => match &profile.compute {
                CostModel::Stochastic(Distribution::LogNormal { median, sigma }) => {
                    assert_eq!(*median, 90.0);
                    assert_eq!(*sigma, 0.5);
                }
                other => panic!("unexpected cost {other:?}"),
            },
            _ => unreachable!(),
        }
        let round = parse_workflow(&write_workflow(&wf).unwrap()).unwrap();
        assert_eq!(round.processors.len(), 3);
    }

    #[test]
    fn coordination_constraints_parse() {
        let text = DEMO.replace(
            "</scufl>",
            r#"<coordination from="images" to="crestLines"/></scufl>"#,
        );
        let wf = parse_workflow(&text).unwrap();
        assert_eq!(wf.control.len(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(parse_workflow("<notscufl/>")
            .unwrap_err()
            .to_string()
            .contains("expected <scufl>"));
        assert!(parse_workflow(r#"<scufl><mystery/></scufl>"#)
            .unwrap_err()
            .to_string()
            .contains("unknown element"));
        let bad_link = DEMO.replace("images:out", "nope:out");
        assert!(parse_workflow(&bad_link)
            .unwrap_err()
            .to_string()
            .contains("unknown processor"));
        let bad_endpoint = DEMO.replace("images:out", "images");
        assert!(parse_workflow(&bad_endpoint)
            .unwrap_err()
            .to_string()
            .contains("must be `processor:port`"));
        let bad_iter = DEMO.replace(r#"compute="90""#, r#"compute="90" iteration="zip""#);
        assert!(parse_workflow(&bad_iter)
            .unwrap_err()
            .to_string()
            .contains("unknown iteration"));
    }

    #[test]
    fn unconnected_port_fails_validation() {
        let text = DEMO.replace(r#"<link from="images:out" to="crestLines:img"/>"#, "");
        assert!(parse_workflow(&text)
            .unwrap_err()
            .to_string()
            .contains("not connected"));
    }

    #[test]
    fn local_bindings_cannot_be_serialised() {
        let mut wf = parse_workflow(DEMO).unwrap();
        let id = wf.find("crestLines").unwrap();
        let svc = |_: &[moteur::Token]| -> Result<Vec<(String, moteur::DataValue)>, String> {
            Ok(vec![])
        };
        wf.processor_mut(id).binding = Some(ServiceBinding::local(svc));
        assert!(write_workflow(&wf)
            .unwrap_err()
            .to_string()
            .contains("non-descriptor"));
    }
}
