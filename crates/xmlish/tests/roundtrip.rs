//! Property-based round-trip tests: any tree the AST can represent must
//! survive serialise → parse unchanged (modulo the documented whitespace
//! normalisation, which the generator avoids by construction).

use moteur_xml::{parse, Element};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,11}"
}

/// Text that is non-empty after trimming and free of raw control chars,
/// so it is kept by the whitespace-dropping rule.
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~]{0,20}[!-~][ -~]{0,20}"
}

fn attr_value_strategy() -> impl Strategy<Value = String> {
    // Arbitrary printable content including quotes/angles/ampersands.
    "[ -~]{0,24}"
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), attr_value_strategy()), 0..4),
        prop::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    e.attributes.push((k, v));
                }
            }
            if let Some(t) = text {
                e = e.with_text(t);
            }
            e
        });
    leaf.prop_recursive(4, 48, 5, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        e.attributes.push((k, v));
                    }
                }
                for c in children {
                    e = e.with_child(c);
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(e in element_strategy()) {
        let s = e.to_xml_string();
        let parsed = parse(&s).expect("writer output must parse");
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn pretty_roundtrip(e in element_strategy()) {
        let s = e.to_pretty_string();
        let parsed = parse(&s).expect("pretty writer output must parse");
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn element_count_stable_across_roundtrip(e in element_strategy()) {
        let parsed = parse(&e.to_xml_string()).unwrap();
        prop_assert_eq!(parsed.element_count(), e.element_count());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~<>&\"']{0,200}") {
        let _ = parse(&s); // may error, must not panic
    }
}
