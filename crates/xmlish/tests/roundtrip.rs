//! Randomised round-trip tests: any tree the AST can represent must
//! survive serialise → parse unchanged (modulo the documented whitespace
//! normalisation, which the generator avoids by construction).
//!
//! Uses a local splitmix64 generator instead of an external
//! property-testing crate so the workspace builds and tests offline.

use moteur_xml::{parse, Element};

/// Deterministic splitmix64 — enough randomness for structural fuzzing.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// `[a-zA-Z_][a-zA-Z0-9_.-]{0,11}`
    fn name(&mut self) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
        let mut s = String::new();
        s.push(FIRST[self.below(FIRST.len())] as char);
        for _ in 0..self.below(12) {
            s.push(REST[self.below(REST.len())] as char);
        }
        s
    }

    /// Printable ASCII, including quotes/angles/ampersands.
    fn printable(&mut self, max: usize) -> String {
        (0..self.below(max + 1))
            .map(|_| (b' ' + self.below(95) as u8) as char)
            .collect()
    }

    /// Text that is non-empty after trimming and free of raw control
    /// chars, so it is kept by the whitespace-dropping rule.
    fn text(&mut self) -> String {
        let mut s = self.printable(20);
        s.push((b'!' + self.below(94) as u8) as char); // ensure non-space
        s.push_str(&self.printable(20));
        s
    }

    fn attributes(&mut self, e: &mut Element, max: usize) {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..self.below(max) {
            let k = self.name();
            if seen.insert(k.clone()) {
                let v = self.printable(24);
                e.attributes.push((k, v));
            }
        }
    }

    fn element(&mut self, depth: usize) -> Element {
        let mut e = Element::new(self.name());
        self.attributes(&mut e, 4);
        if depth > 0 && self.below(2) == 0 {
            for _ in 0..self.below(5) {
                e = e.with_child(self.element(depth - 1));
            }
        } else if self.below(2) == 0 {
            e = e.with_text(self.text());
        }
        e
    }
}

#[test]
fn compact_roundtrip() {
    let mut g = Gen(1);
    for _ in 0..256 {
        let e = g.element(4);
        let s = e.to_xml_string();
        let parsed = parse(&s).expect("writer output must parse");
        assert_eq!(parsed, e, "serialised form: {s}");
    }
}

#[test]
fn pretty_roundtrip() {
    let mut g = Gen(2);
    for _ in 0..256 {
        let e = g.element(4);
        let s = e.to_pretty_string();
        let parsed = parse(&s).expect("pretty writer output must parse");
        assert_eq!(parsed, e, "serialised form: {s}");
    }
}

#[test]
fn element_count_stable_across_roundtrip() {
    let mut g = Gen(3);
    for _ in 0..256 {
        let e = g.element(4);
        let parsed = parse(&e.to_xml_string()).unwrap();
        assert_eq!(parsed.element_count(), e.element_count());
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    const EXTRA: &[u8] = b"<>&\"'";
    let mut g = Gen(4);
    for _ in 0..512 {
        let s: String = (0..g.below(201))
            .map(|_| {
                if g.below(3) == 0 {
                    EXTRA[g.below(EXTRA.len())] as char
                } else {
                    (b' ' + g.below(95) as u8) as char
                }
            })
            .collect();
        let _ = parse(&s); // may error, must not panic
    }
}
