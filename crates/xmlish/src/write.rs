//! Serialisation: compact and pretty-printed writers with escaping.

use crate::ast::{Element, Node};
use std::fmt::Write as _;

/// Escape text content (`<`, `>`, `&`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted serialisation.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

impl Element {
    /// Compact single-line serialisation.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Indented serialisation (two spaces per level). Elements with text
    /// children are kept on one line so the text round-trips exactly.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_open_tag(&self, out: &mut String, self_close: bool) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
        }
        out.push_str(if self_close { "/>" } else { ">" });
    }

    fn write_compact(&self, out: &mut String) {
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_compact(out),
                Node::Text(t) => out.push_str(&escape_text(t)),
            }
        }
        let _ = write!(out, "</{}>", self.name);
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        // Mixed or text content cannot be re-indented without changing
        // the text, so fall back to compact for this subtree.
        if self.children.iter().any(|c| matches!(c, Node::Text(_))) {
            self.write_compact(out);
            return;
        }
        self.write_open_tag(out, false);
        out.push('\n');
        for child in &self.children {
            match child {
                Node::Element(e) => {
                    e.write_pretty(out, depth + 1);
                    out.push('\n');
                }
                Node::Text(_) => unreachable!("text handled above"),
            }
        }
        let _ = write!(out, "{pad}</{}>", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_empty_element_self_closes() {
        assert_eq!(Element::new("a").to_xml_string(), "<a/>");
    }

    #[test]
    fn compact_serialises_attrs_and_children() {
        let e = Element::new("a")
            .with_attr("x", "1")
            .with_child(Element::new("b").with_text("t"));
        assert_eq!(e.to_xml_string(), r#"<a x="1"><b>t</b></a>"#);
    }

    #[test]
    fn escaping_text_and_attrs() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_attr(r#"x"y<z"#), "x&quot;y&lt;z");
    }

    #[test]
    fn attr_newline_and_tab_are_preserved_via_char_refs() {
        let e = Element::new("a").with_attr("v", "x\ny\tz");
        let round = parse(&e.to_xml_string()).unwrap();
        assert_eq!(round.attr("v"), Some("x\ny\tz"));
    }

    #[test]
    fn compact_round_trip() {
        let e = Element::new("root")
            .with_attr("k", "v&\"w")
            .with_child(Element::new("c1").with_text("hello <world>"))
            .with_child(Element::new("c2").with_attr("a", "b"));
        assert_eq!(parse(&e.to_xml_string()).unwrap(), e);
    }

    #[test]
    fn pretty_round_trip() {
        let e = Element::new("root")
            .with_child(Element::new("c1").with_text("text stays inline"))
            .with_child(Element::new("c2").with_child(Element::new("d")));
        assert_eq!(parse(&e.to_pretty_string()).unwrap(), e);
    }

    #[test]
    fn pretty_indents_element_only_content() {
        let e = Element::new("a").with_child(Element::new("b").with_child(Element::new("c")));
        assert_eq!(e.to_pretty_string(), "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }
}
