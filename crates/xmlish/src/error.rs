//! Error and source-position types for the XML parser.

use std::fmt;

/// A 1-based line/column position in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    pub line: u32,
    pub column: u32,
}

impl Position {
    pub const START: Position = Position { line: 1, column: 1 };
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Parse error with the position where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub position: Position,
    pub message: String,
}

impl XmlError {
    pub fn new(position: Position, message: impl Into<String>) -> Self {
        XmlError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_colon_column() {
        let p = Position {
            line: 3,
            column: 17,
        };
        assert_eq!(p.to_string(), "3:17");
    }

    #[test]
    fn error_display_includes_position_and_message() {
        let e = XmlError::new(Position { line: 2, column: 5 }, "unexpected `<`");
        assert_eq!(e.to_string(), "XML error at 2:5: unexpected `<`");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&XmlError::new(Position::START, "x"));
    }
}
