//! Error, source-position and span types for the XML parser.
//!
//! Every error carries the byte offset where it was detected (via
//! [`Position::offset`]) so downstream diagnostics engines can point at
//! the exact source location; [`Span`] is the half-open byte range used
//! to annotate parsed elements and attributes.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
///
/// The empty span `0..0` marks nodes built programmatically rather than
/// parsed from a document; such spans render as "no location".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// The "no location" span used by builder-constructed nodes.
    pub const EMPTY: Span = Span { start: 0, end: 0 };

    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// True for the builder placeholder (`0..0`).
    pub fn is_empty(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Smallest span covering both `self` and `other`. An empty operand
    /// yields the other one, so builders can fold spans safely.
    pub fn to(self, other: Span) -> Span {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of `start` within `source`, counting
    /// columns in characters. Returns (1, 1) when out of range.
    pub fn line_col(&self, source: &str) -> (u32, u32) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let col = upto
            .rsplit_once('\n')
            .map_or(upto, |(_, tail)| tail)
            .chars()
            .count() as u32
            + 1;
        (line, col)
    }
}

/// A 1-based line/column position in the source text, plus the byte
/// offset it corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    pub line: u32,
    pub column: u32,
    /// Byte offset into the source text.
    pub offset: usize,
}

impl Position {
    pub const START: Position = Position {
        line: 1,
        column: 1,
        offset: 0,
    };

    /// A zero-length span at this position.
    pub fn span(&self) -> Span {
        Span {
            start: self.offset,
            end: self.offset,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// What went wrong, as a typed variant (rather than a free-form string)
/// so callers can match on the failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// A specific token was required (`<`, `>`, `=`, `</`…).
    Expected { what: String },
    /// A name (element or attribute) was required.
    ExpectedName,
    /// An attribute, `>` or `/>` was required inside a start tag.
    ExpectedAttribute,
    /// A quoted attribute value was required.
    ExpectedAttrValue,
    /// The input ended inside an attribute value.
    UnterminatedAttrValue,
    /// `<` appeared inside an attribute value.
    AngleInAttrValue,
    /// The same attribute name appeared twice on one element.
    DuplicateAttribute { name: String },
    /// `</b>` closed an element opened as `<a>`.
    MismatchedEndTag { expected: String, found: String },
    /// The input ended before the element was closed.
    UnclosedElement { name: String },
    /// A comment, CDATA section or processing instruction never ended.
    Unterminated { construct: &'static str },
    /// `&name;` with an unknown entity name.
    UnknownEntity { name: String },
    /// `&...` without a closing `;`.
    UnterminatedReference,
    /// `&#...;` that is not a valid character number.
    BadCharacterReference { body: String },
    /// A character reference naming a code point outside Unicode scalar
    /// values (e.g. a surrogate).
    CharacterOutOfRange { code: u32 },
    /// Non-whitespace content after the root element.
    ContentAfterRoot,
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::Expected { what } => write!(f, "expected `{what}`"),
            XmlErrorKind::ExpectedName => write!(f, "expected a name"),
            XmlErrorKind::ExpectedAttribute => write!(f, "expected attribute, `>` or `/>`"),
            XmlErrorKind::ExpectedAttrValue => write!(f, "expected a quoted attribute value"),
            XmlErrorKind::UnterminatedAttrValue => write!(f, "unterminated attribute value"),
            XmlErrorKind::AngleInAttrValue => write!(f, "`<` not allowed in attribute value"),
            XmlErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute `{name}`")
            }
            XmlErrorKind::MismatchedEndTag { expected, found } => write!(
                f,
                "mismatched end tag: expected `</{expected}>`, found `</{found}>`"
            ),
            XmlErrorKind::UnclosedElement { name } => write!(f, "unclosed element `{name}`"),
            XmlErrorKind::Unterminated { construct } => write!(f, "unterminated {construct}"),
            XmlErrorKind::UnknownEntity { name } => write!(f, "unknown entity `&{name};`"),
            XmlErrorKind::UnterminatedReference => write!(f, "unterminated entity reference"),
            XmlErrorKind::BadCharacterReference { body } => {
                write!(f, "bad character reference `&{body};`")
            }
            XmlErrorKind::CharacterOutOfRange { code } => {
                write!(f, "character reference out of range (#{code})")
            }
            XmlErrorKind::ContentAfterRoot => write!(f, "content after the root element"),
        }
    }
}

/// Parse error: a typed kind plus the position (line/column *and* byte
/// offset) where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub position: Position,
    pub kind: XmlErrorKind,
}

impl XmlError {
    pub fn new(position: Position, kind: XmlErrorKind) -> Self {
        XmlError { position, kind }
    }

    /// The rendered message, without the position prefix.
    pub fn message(&self) -> String {
        self.kind.to_string()
    }

    /// Byte offset of the error in the source text.
    pub fn offset(&self) -> usize {
        self.position.offset
    }

    /// A zero-length span at the error location, for diagnostics.
    pub fn span(&self) -> Span {
        self.position.span()
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.position, self.kind)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_colon_column() {
        let p = Position {
            line: 3,
            column: 17,
            offset: 42,
        };
        assert_eq!(p.to_string(), "3:17");
        assert_eq!(p.span(), Span::new(42, 42));
    }

    #[test]
    fn error_display_includes_position_and_message() {
        let e = XmlError::new(
            Position {
                line: 2,
                column: 5,
                offset: 9,
            },
            XmlErrorKind::Expected { what: "<".into() },
        );
        assert_eq!(e.to_string(), "XML error at 2:5: expected `<`");
        assert_eq!(e.offset(), 9);
        assert_eq!(e.message(), "expected `<`");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&XmlError::new(Position::START, XmlErrorKind::ExpectedName));
    }

    #[test]
    fn span_union_and_emptiness() {
        assert!(Span::EMPTY.is_empty());
        assert!(!Span::new(0, 1).is_empty());
        assert_eq!(Span::new(3, 5).to(Span::new(8, 10)), Span::new(3, 10));
        assert_eq!(Span::EMPTY.to(Span::new(2, 4)), Span::new(2, 4));
        assert_eq!(Span::new(2, 4).to(Span::EMPTY), Span::new(2, 4));
        assert_eq!(Span::new(2, 7).len(), 5);
    }

    #[test]
    fn line_col_counts_from_one() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
        assert_eq!(Span::new(999, 999).line_col(src), (3, 2));
    }
}
