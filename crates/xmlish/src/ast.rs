//! Document tree: elements, attributes and text nodes, plus the query
//! helpers the descriptor/workflow loaders are built on.
//!
//! Parsed elements carry byte [`Span`]s pointing back into the source
//! text (the whole element, and each attribute) so diagnostics can
//! highlight the offending construct. Builder-constructed elements use
//! [`Span::EMPTY`]; spans are ignored by equality so round-trip tests
//! compare structure, not provenance.

use crate::error::Span;

/// A node in an element's child list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Element(Element),
    /// Text content. Adjacent text is merged by the parser; text nodes
    /// consisting only of whitespace between elements are dropped.
    Text(String),
}

impl Node {
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

/// An XML element: name, ordered attribute list and ordered children.
///
/// Attributes keep their document order (the dialects treat repeated
/// names as an error at load time, not at parse time).
#[derive(Debug, Clone, Default)]
pub struct Element {
    pub name: String,
    pub attributes: Vec<(String, String)>,
    pub children: Vec<Node>,
    /// Byte range of the whole element in the source text (from `<` to
    /// the end of `/>` or the close tag). [`Span::EMPTY`] when built
    /// programmatically.
    pub span: Span,
    /// Byte range of each attribute (`name="value"`), parallel to
    /// `attributes`. May be shorter than `attributes` for elements
    /// extended through builders after parsing.
    pub attr_spans: Vec<Span>,
}

// Equality ignores spans: a parsed element equals the structurally
// identical builder-constructed one (round-trip tests rely on this).
impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.attributes == other.attributes
            && self.children == other.children
    }
}

impl Eq for Element {}

impl Element {
    /// New empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            span: Span::EMPTY,
            attr_spans: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self.attr_spans.push(Span::EMPTY);
        self
    }

    /// Builder: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Value of the attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Source span of the attribute `name` (the full `name="value"`
    /// range). [`Span::EMPTY`] for builder-added attributes; `None`
    /// when the attribute does not exist.
    pub fn attr_span(&self, name: &str) -> Option<Span> {
        let idx = self.attributes.iter().position(|(n, _)| n == name)?;
        Some(self.attr_spans.get(idx).copied().unwrap_or(Span::EMPTY))
    }

    /// This element's span, falling back to `parent` when the element
    /// was built programmatically (useful for nested lookups).
    pub fn span_or(&self, parent: Span) -> Span {
        if self.span.is_empty() {
            parent
        } else {
            self.span
        }
    }

    /// First child element named `name`.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements named `name`, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// All child elements, in document order.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Follow a path of child-element names (first match at every step).
    pub fn path(&self, path: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for name in path {
            cur = cur.child(name)?;
        }
        Some(cur)
    }

    /// Number of descendant elements, including `self`. Used by tests and
    /// the property-based round-trip harness.
    pub fn element_count(&self) -> usize {
        1 + self.elements().map(Element::element_count).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("workflow")
            .with_attr("name", "bronze")
            .with_child(
                Element::new("processor")
                    .with_attr("name", "crestLines")
                    .with_text("pre-processing"),
            )
            .with_child(Element::new("processor").with_attr("name", "crestMatch"))
            .with_child(
                Element::new("link")
                    .with_attr("from", "a")
                    .with_attr("to", "b"),
            )
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("name"), Some("bronze"));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn child_returns_first_match() {
        let e = sample();
        assert_eq!(
            e.child("processor").unwrap().attr("name"),
            Some("crestLines")
        );
        assert!(e.child("nope").is_none());
    }

    #[test]
    fn children_named_returns_all_in_order() {
        let e = sample();
        let names: Vec<_> = e
            .children_named("processor")
            .map(|p| p.attr("name").unwrap())
            .collect();
        assert_eq!(names, ["crestLines", "crestMatch"]);
    }

    #[test]
    fn text_trims_and_concatenates() {
        let e = Element::new("v")
            .with_text("  a ")
            .with_child(Element::new("x"))
            .with_text("b  ");
        assert_eq!(e.text(), "a b");
    }

    #[test]
    fn path_descends() {
        let e = Element::new("a").with_child(Element::new("b").with_child(Element::new("c")));
        assert_eq!(e.path(&["b", "c"]).unwrap().name, "c");
        assert!(e.path(&["b", "x"]).is_none());
        assert_eq!(e.path(&[]).unwrap().name, "a");
    }

    #[test]
    fn element_count_counts_self_and_descendants() {
        assert_eq!(sample().element_count(), 4);
        assert_eq!(Element::new("leaf").element_count(), 1);
    }

    #[test]
    fn node_accessors() {
        let t = Node::Text("x".into());
        let e = Node::Element(Element::new("e"));
        assert_eq!(t.as_text(), Some("x"));
        assert!(t.as_element().is_none());
        assert!(e.as_text().is_none());
        assert_eq!(e.as_element().unwrap().name, "e");
    }
}
