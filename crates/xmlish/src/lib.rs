//! # moteur-xml
//!
//! A minimal, dependency-free XML 1.0 subset parser and writer.
//!
//! All of the on-disk formats used by the MOTEUR-RS reproduction are XML
//! dialects taken from the paper: the executable-descriptor language
//! (Fig. 8), the Scufl-like workflow language and the input data-set
//! language. Rather than pulling a full XML stack, this crate implements
//! the subset those dialects need:
//!
//! - elements with attributes, text content and nested children,
//! - the five predefined entities (`&lt; &gt; &amp; &apos; &quot;`)
//!   plus decimal/hex character references,
//! - comments (`<!-- -->`), XML declarations (`<?xml ...?>`) and
//!   processing instructions (skipped),
//! - CDATA sections,
//! - a position-tracking lexer producing typed errors ([`XmlErrorKind`])
//!   with line/column *and* byte-offset info,
//! - byte [`Span`]s on every parsed element and attribute, so
//!   downstream diagnostics can point back into the source text.
//!
//! Not supported (not needed by the dialects): DTDs, namespaces beyond
//! treating `ns:name` as an opaque name, and entity definitions.
//!
//! ## Quick example
//!
//! ```
//! use moteur_xml::parse;
//!
//! let doc = parse(r#"<description><executable name="CrestLines.pl"/></description>"#)
//!     .unwrap();
//! assert_eq!(doc.name, "description");
//! let exe = doc.child("executable").unwrap();
//! assert_eq!(exe.attr("name"), Some("CrestLines.pl"));
//!
//! // Round trip
//! let text = doc.to_pretty_string();
//! assert_eq!(parse(&text).unwrap(), doc);
//! ```

mod ast;
mod error;
mod parse;
mod write;

pub use ast::{Element, Node};
pub use error::{Position, Span, XmlError, XmlErrorKind};
pub use parse::parse;
pub use write::{escape_attr, escape_text};
