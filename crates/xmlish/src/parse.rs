//! Recursive-descent parser over a position-tracking cursor.
//!
//! Every parse failure is a typed [`XmlErrorKind`] carrying the byte
//! offset where it was detected, and every parsed element/attribute is
//! annotated with its byte [`Span`] — the raw material for the lint
//! engine's source-anchored diagnostics.

use crate::ast::{Element, Node};
use crate::error::{Position, Span, XmlError, XmlErrorKind};

/// Parse a complete document and return its root element.
///
/// Leading XML declarations, processing instructions and comments are
/// skipped; trailing content other than whitespace/comments is an error.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut cur = Cursor::new(input);
    cur.skip_misc();
    let root = cur.parse_element()?;
    cur.skip_misc();
    if !cur.at_end() {
        return Err(cur.error(XmlErrorKind::ContentAfterRoot));
    }
    Ok(root)
}

struct Cursor<'a> {
    input: &'a str,
    /// Byte offset into `input`.
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor {
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.column,
            offset: self.pos,
        }
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(self.position(), kind)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(XmlErrorKind::Expected { what: s.into() }))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Skip whitespace, comments, XML declarations and processing
    /// instructions — the "misc" productions allowed around the root.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                // A comment may legally contain anything except `--`.
                if self.skip_until("-->").is_err() {
                    return; // unterminated; the element parser will report it
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ()> {
        while !self.at_end() {
            if self.eat(end) {
                return Ok(());
            }
            self.bump();
        }
        Err(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.error(XmlErrorKind::ExpectedName)),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        let open_start = self.pos;
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') | Some('/') => break,
                Some(c) if is_name_start(c) => {
                    let attr_pos = self.position();
                    let attr = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    if element.attr(&attr).is_some() {
                        return Err(XmlError::new(
                            attr_pos,
                            XmlErrorKind::DuplicateAttribute { name: attr },
                        ));
                    }
                    element.attributes.push((attr, value));
                    element
                        .attr_spans
                        .push(Span::new(attr_pos.offset, self.pos));
                }
                _ => return Err(self.error(XmlErrorKind::ExpectedAttribute)),
            }
        }

        if self.eat("/>") {
            element.span = Span::new(open_start, self.pos);
            return Ok(element);
        }
        self.expect(">")?;
        self.parse_content(&mut element)?;
        element.span = Span::new(open_start, self.pos);
        Ok(element)
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let Some(quote @ ('"' | '\'')) = self.peek() else {
            return Err(self.error(XmlErrorKind::ExpectedAttrValue));
        };
        self.bump();
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(XmlErrorKind::UnterminatedAttrValue)),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some('<') => return Err(self.error(XmlErrorKind::AngleInAttrValue)),
                Some('&') => value.push(self.parse_reference()?),
                Some(c) => {
                    value.push(c);
                    self.bump();
                }
            }
        }
    }

    /// Parse children up to and including the matching end tag.
    fn parse_content(&mut self, element: &mut Element) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(self.error(XmlErrorKind::UnclosedElement {
                    name: element.name.clone(),
                }));
            }
            if self.starts_with("</") {
                flush_text(&mut text, element);
                self.expect("</")?;
                let close_pos = self.position();
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(XmlError::new(
                        close_pos,
                        XmlErrorKind::MismatchedEndTag {
                            expected: element.name.clone(),
                            found: close,
                        },
                    ));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(());
            }
            if self.starts_with("<!--") {
                self.expect("<!--")?;
                if self.skip_until("-->").is_err() {
                    return Err(self.error(XmlErrorKind::Unterminated {
                        construct: "comment",
                    }));
                }
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.expect("<![CDATA[")?;
                let start = self.pos;
                loop {
                    if self.at_end() {
                        return Err(self.error(XmlErrorKind::Unterminated {
                            construct: "CDATA section",
                        }));
                    }
                    if self.starts_with("]]>") {
                        text.push_str(&self.input[start..self.pos]);
                        self.expect("]]>")?;
                        break;
                    }
                    self.bump();
                }
                continue;
            }
            if self.starts_with("<?") {
                self.expect("<?")?;
                if self.skip_until("?>").is_err() {
                    return Err(self.error(XmlErrorKind::Unterminated {
                        construct: "processing instruction",
                    }));
                }
                continue;
            }
            if self.starts_with("<") {
                flush_text(&mut text, element);
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
                continue;
            }
            match self.peek() {
                Some('&') => text.push(self.parse_reference()?),
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
                None => unreachable!("at_end checked above"),
            }
        }
    }

    /// Parse `&...;` — predefined entity or character reference.
    fn parse_reference(&mut self) -> Result<char, XmlError> {
        let start_pos = self.position();
        self.expect("&")?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != ';' && !c.is_whitespace()) {
            self.bump();
        }
        let body = &self.input[start..self.pos];
        if !self.eat(";") {
            return Err(XmlError::new(
                start_pos,
                XmlErrorKind::UnterminatedReference,
            ));
        }
        match body {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16).map_err(|_| {
                    XmlError::new(
                        start_pos,
                        XmlErrorKind::BadCharacterReference { body: body.into() },
                    )
                })?;
                char::from_u32(code).ok_or(XmlError::new(
                    start_pos,
                    XmlErrorKind::CharacterOutOfRange { code },
                ))
            }
            _ if body.starts_with('#') => {
                let code = body[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(
                        start_pos,
                        XmlErrorKind::BadCharacterReference { body: body.into() },
                    )
                })?;
                char::from_u32(code).ok_or(XmlError::new(
                    start_pos,
                    XmlErrorKind::CharacterOutOfRange { code },
                ))
            }
            other => Err(XmlError::new(
                start_pos,
                XmlErrorKind::UnknownEntity { name: other.into() },
            )),
        }
    }
}

/// Append accumulated text as a child node unless it is pure
/// inter-element whitespace.
fn flush_text(text: &mut String, element: &mut Element) {
    if !text.is_empty() {
        if !text.chars().all(char::is_whitespace) {
            element.children.push(Node::Text(std::mem::take(text)));
        } else {
            text.clear();
        }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_empty_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e, Element::new("a"));
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let e = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.attr("y"), Some("two"));
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let e = parse("<a><b>hello</b><c/></a>").unwrap();
        assert_eq!(e.child("b").unwrap().text(), "hello");
        assert!(e.child("c").is_some());
    }

    #[test]
    fn interelement_whitespace_is_dropped() {
        let e = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn significant_text_is_kept() {
        let e = parse("<a> x <b/> y </a>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.children[0].as_text(), Some(" x "));
    }

    #[test]
    fn decodes_predefined_entities_in_text_and_attrs() {
        let e = parse(r#"<a v="&lt;&amp;&gt;">&quot;&apos;</a>"#).unwrap();
        assert_eq!(e.attr("v"), Some("<&>"));
        assert_eq!(e.text(), "\"'");
    }

    #[test]
    fn decodes_character_references() {
        let e = parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(e.text(), "AB");
    }

    #[test]
    fn skips_xml_declaration_and_comments() {
        let e =
            parse("<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><!-- inner --><b/></a>\n<!-- bye -->")
                .unwrap();
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn cdata_is_literal_text() {
        let e = parse("<a><![CDATA[<not> & parsed]]></a>").unwrap();
        assert_eq!(e.text(), "<not> & parsed");
    }

    #[test]
    fn rejects_mismatched_end_tag() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(
            matches!(
                &err.kind,
                XmlErrorKind::MismatchedEndTag { expected, found }
                    if expected == "b" && found == "a"
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_unclosed_element() {
        let err = parse("<a><b/>").unwrap_err();
        assert!(
            matches!(&err.kind, XmlErrorKind::UnclosedElement { name } if name == "a"),
            "{err}"
        );
        assert_eq!(err.offset(), 7, "error points at end of input");
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(
            matches!(&err.kind, XmlErrorKind::DuplicateAttribute { name } if name == "x"),
            "{err}"
        );
        assert_eq!(err.offset(), 9, "error points at the second `x`");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert_eq!(
            parse("<a/><b/>").unwrap_err().kind,
            XmlErrorKind::ContentAfterRoot
        );
        assert_eq!(
            parse("<a/>text").unwrap_err().kind,
            XmlErrorKind::ContentAfterRoot
        );
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(
            matches!(&err.kind, XmlErrorKind::UnknownEntity { name } if name == "nbsp"),
            "{err}"
        );
        assert_eq!(err.offset(), 3, "error points at the `&`");
    }

    #[test]
    fn rejects_bad_character_reference() {
        // Surrogate code point: numerically valid, not a scalar value.
        let err = parse("<a>&#xD800;</a>").unwrap_err();
        assert!(matches!(
            err.kind,
            XmlErrorKind::CharacterOutOfRange { code: 0xD800 }
        ));
        let err = parse("<a>&#zz;</a>").unwrap_err();
        assert!(matches!(
            err.kind,
            XmlErrorKind::BadCharacterReference { .. }
        ));
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b x=></b>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 2);
        assert!(err.position.column > 1);
        // Byte offset points inside line 2 (after the "<a>\n" prefix).
        assert!(err.offset() > 4);
        assert_eq!(&"<a>\n  <b x=></b>\n</a>"[err.offset()..=err.offset()], ">");
    }

    #[test]
    fn names_allow_colon_dash_dot_underscore() {
        let e = parse(r#"<ns:el-em.ent _a-b.c="1"/>"#).unwrap();
        assert_eq!(e.name, "ns:el-em.ent");
        assert_eq!(e.attr("_a-b.c"), Some("1"));
    }

    #[test]
    fn rejects_lt_in_attribute_value() {
        assert_eq!(
            parse(r#"<a v="<"/>"#).unwrap_err().kind,
            XmlErrorKind::AngleInAttrValue
        );
    }

    #[test]
    fn whitespace_allowed_in_end_tag_and_around_eq() {
        let e = parse("<a  x = \"1\" ></a >").unwrap();
        assert_eq!(e.attr("x"), Some("1"));
    }

    #[test]
    fn element_spans_cover_the_source_text() {
        let src = "<a>\n  <b x=\"1\"/>\n  <c>t</c>\n</a>";
        let e = parse(src).unwrap();
        assert_eq!(&src[e.span.start..e.span.end], src, "root spans everything");
        let b = e.child("b").unwrap();
        assert_eq!(&src[b.span.start..b.span.end], "<b x=\"1\"/>");
        let c = e.child("c").unwrap();
        assert_eq!(&src[c.span.start..c.span.end], "<c>t</c>");
    }

    #[test]
    fn attribute_spans_cover_name_and_value() {
        let src = r#"<a first="1" second='two'/>"#;
        let e = parse(src).unwrap();
        let s1 = e.attr_span("first").unwrap();
        assert_eq!(&src[s1.start..s1.end], r#"first="1""#);
        let s2 = e.attr_span("second").unwrap();
        assert_eq!(&src[s2.start..s2.end], "second='two'");
        assert_eq!(e.attr_span("missing"), None);
    }

    #[test]
    fn builder_elements_have_empty_spans() {
        let e = Element::new("a").with_attr("x", "1");
        assert!(e.span.is_empty());
        assert_eq!(e.attr_span("x"), Some(Span::EMPTY));
    }

    #[test]
    fn spans_survive_nesting_depth() {
        let src = "<w><p><q><r/></q></p></w>";
        let e = parse(src).unwrap();
        let r = e.path(&["p", "q", "r"]).unwrap();
        assert_eq!(&src[r.span.start..r.span.end], "<r/>");
        assert_eq!(r.span.line_col(src), (1, 10));
    }

    // Malformed-input regression battery: every failure class returns a
    // typed error with a byte offset inside the input — never a panic.
    #[test]
    fn malformed_inputs_error_with_in_bounds_offsets() {
        let cases: &[&str] = &[
            "",
            "   ",
            "<",
            "<a",
            "<a ",
            "<a x",
            "<a x=",
            "<a x=1/>",
            "<a x=\"1/>",
            "<a x='1/>",
            "<a><b>",
            "<a></b>",
            "<a/><a/>",
            "<a>&",
            "<a>&amp</a>",
            "<a>&#;</a>",
            "<a>&#x;</a>",
            "<a>&#x110000;</a>",
            "<a><!-- never closed",
            "<a><![CDATA[ never closed",
            "<a><? never closed",
            "<a v=\"<\"/>",
            "<1bad/>",
            "<a 1bad=\"x\"/>",
            "<a></a  x>",
            "<a x=\"1\" x=\"2\"/>",
        ];
        for case in cases {
            let err = parse(case).unwrap_err();
            assert!(
                err.offset() <= case.len(),
                "offset {} out of bounds for {case:?}",
                err.offset()
            );
            // The rendered message and position agree with the kind.
            assert!(err.to_string().contains("XML error at"), "{err}");
        }
    }

    #[test]
    fn parses_figure8_descriptor_shape() {
        // Abbreviated version of the paper's Fig. 8 example.
        let doc = parse(
            r#"<description>
                 <executable name="CrestLines.pl">
                   <access type="URL"><path value="http://colors.unice.fr"/></access>
                   <value value="CrestLines.pl"/>
                   <input name="floating_image" option="-im1"><access type="GFN"/></input>
                   <input name="scale" option="-s"/>
                   <output name="crest_reference" option="-c1"><access type="GFN"/></output>
                   <sandbox name="convert8bits">
                     <access type="URL"><path value="http://colors.unice.fr"/></access>
                     <value value="Convert8bits.pl"/>
                   </sandbox>
                 </executable>
               </description>"#,
        )
        .unwrap();
        let exe = doc.child("executable").unwrap();
        assert_eq!(exe.attr("name"), Some("CrestLines.pl"));
        assert_eq!(exe.children_named("input").count(), 2);
        assert_eq!(exe.path(&["access"]).unwrap().attr("type"), Some("URL"));
    }
}
