//! Least-squares rigid fit of paired point sets (Horn's quaternion
//! method) — the numerical core shared by the feature-based
//! registration algorithms.

use crate::geometry::{Quaternion, RigidTransform, Vec3};

/// Find the rigid transform `t` minimising `Σ‖t(p_i) − q_i‖²` over the
/// given correspondences. Requires at least 3 non-degenerate pairs.
///
/// Uses Horn's closed form: the optimal rotation is the eigenvector of
/// a symmetric 4×4 matrix built from the cross-covariance; the dominant
/// eigenvector is found by shifted power iteration.
pub fn fit_rigid(pairs: &[(Vec3, Vec3)]) -> Option<RigidTransform> {
    if pairs.len() < 3 {
        return None;
    }
    let n = pairs.len() as f64;
    let mut cp = Vec3::ZERO;
    let mut cq = Vec3::ZERO;
    for (p, q) in pairs {
        cp = cp + *p;
        cq = cq + *q;
    }
    cp = cp * (1.0 / n);
    cq = cq * (1.0 / n);

    // Cross-covariance M = Σ (p−cp)(q−cq)^T.
    let mut m = [[0.0f64; 3]; 3];
    for (p, q) in pairs {
        let a = *p - cp;
        let b = *q - cq;
        let av = [a.x, a.y, a.z];
        let bv = [b.x, b.y, b.z];
        for (i, &ai) in av.iter().enumerate() {
            for (j, &bj) in bv.iter().enumerate() {
                m[i][j] += ai * bj;
            }
        }
    }

    // Horn's symmetric 4×4 matrix N.
    let trace = m[0][0] + m[1][1] + m[2][2];
    let mut nmat = [[0.0f64; 4]; 4];
    nmat[0][0] = trace;
    nmat[0][1] = m[1][2] - m[2][1];
    nmat[0][2] = m[2][0] - m[0][2];
    nmat[0][3] = m[0][1] - m[1][0];
    for i in 0..3 {
        nmat[i + 1][0] = nmat[0][i + 1];
        for j in 0..3 {
            nmat[i + 1][j + 1] = m[i][j] + m[j][i] - if i == j { trace } else { 0.0 };
        }
    }

    // Shift so the largest eigenvalue of N is the dominant one of
    // N + σI, then power-iterate.
    let shift = 4.0
        * nmat
            .iter()
            .flatten()
            .fold(0.0f64, |acc, &v| acc.max(v.abs()))
        + 1.0;
    for (i, row) in nmat.iter_mut().enumerate() {
        row[i] += shift;
    }
    let mut v = [1.0f64, 0.1, 0.2, 0.3]; // avoid pathological starts
    for _ in 0..200 {
        let mut w = [0.0f64; 4];
        for (i, row) in nmat.iter().enumerate() {
            w[i] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return None;
        }
        let next = [w[0] / norm, w[1] / norm, w[2] / norm, w[3] / norm];
        let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        v = next;
        if delta < 1e-15 {
            break;
        }
    }
    let rotation = Quaternion {
        w: v[0],
        x: v[1],
        y: v[2],
        z: v[3],
    }
    .normalized();
    let translation = cq - rotation.rotate(cp);
    Some(RigidTransform::new(rotation, translation))
}

/// Root-mean-square residual of a transform over correspondences.
pub fn rms_residual(t: RigidTransform, pairs: &[(Vec3, Vec3)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let ss: f64 = pairs
        .iter()
        .map(|(p, q)| {
            let d = t.apply(*p).distance(*q);
            d * d
        })
        .sum();
    (ss / pairs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn cloud(rng: &mut SmallRng, n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.range(-20.0, 20.0),
                    rng.range(-20.0, 20.0),
                    rng.range(-20.0, 20.0),
                )
            })
            .collect()
    }

    #[test]
    fn recovers_exact_transform_from_clean_pairs() {
        let mut rng = SmallRng::new(1);
        let truth = RigidTransform::from_params(0.3, -0.2, 0.5, 4.0, -1.0, 2.5);
        let points = cloud(&mut rng, 40);
        let pairs: Vec<(Vec3, Vec3)> = points.iter().map(|&p| (p, truth.apply(p))).collect();
        let fit = fit_rigid(&pairs).unwrap();
        assert!(
            fit.rotation_error(truth) < 1e-8,
            "rot err {}",
            fit.rotation_error(truth)
        );
        assert!(fit.translation_error(truth) < 1e-7);
        assert!(rms_residual(fit, &pairs) < 1e-7);
    }

    #[test]
    fn recovers_transform_despite_noise() {
        let mut rng = SmallRng::new(2);
        let truth = RigidTransform::from_params(-0.1, 0.25, 0.05, 1.0, 3.0, -2.0);
        let points = cloud(&mut rng, 200);
        let pairs: Vec<(Vec3, Vec3)> = points
            .iter()
            .map(|&p| {
                let noise = Vec3::new(rng.normal(), rng.normal(), rng.normal()) * 0.1;
                (p, truth.apply(p) + noise)
            })
            .collect();
        let fit = fit_rigid(&pairs).unwrap();
        assert!(
            fit.rotation_error(truth) < 0.01,
            "rot err {}",
            fit.rotation_error(truth)
        );
        assert!(fit.translation_error(truth) < 0.1);
    }

    #[test]
    fn identity_from_identical_clouds() {
        let mut rng = SmallRng::new(3);
        let points = cloud(&mut rng, 10);
        let pairs: Vec<(Vec3, Vec3)> = points.iter().map(|&p| (p, p)).collect();
        let fit = fit_rigid(&pairs).unwrap();
        assert!(fit.rotation_error(RigidTransform::IDENTITY) < 1e-9);
        assert!(fit.translation_error(RigidTransform::IDENTITY) < 1e-9);
    }

    #[test]
    fn pure_translation() {
        let mut rng = SmallRng::new(4);
        let truth = RigidTransform::from_params(0.0, 0.0, 0.0, 7.0, -3.0, 1.0);
        let points = cloud(&mut rng, 15);
        let pairs: Vec<(Vec3, Vec3)> = points.iter().map(|&p| (p, truth.apply(p))).collect();
        let fit = fit_rigid(&pairs).unwrap();
        assert!(fit.rotation_error(truth) < 1e-8);
        assert!(fit.translation_error(truth) < 1e-8);
    }

    #[test]
    fn too_few_pairs_is_none() {
        assert!(fit_rigid(&[]).is_none());
        assert!(fit_rigid(&[(Vec3::ZERO, Vec3::ZERO), (Vec3::ZERO, Vec3::ZERO)]).is_none());
    }

    #[test]
    fn large_rotation_is_recovered() {
        let mut rng = SmallRng::new(5);
        let truth = RigidTransform::from_params(1.2, -0.9, 2.0, 0.0, 0.0, 0.0);
        let points = cloud(&mut rng, 30);
        let pairs: Vec<(Vec3, Vec3)> = points.iter().map(|&p| (p, truth.apply(p))).collect();
        let fit = fit_rigid(&pairs).unwrap();
        assert!(
            fit.rotation_error(truth) < 1e-7,
            "rot err {}",
            fit.rotation_error(truth)
        );
    }
}
