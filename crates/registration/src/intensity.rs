//! Intensity-based registration — the `Yasmina` algorithm stand-in.
//!
//! Optimises the 6 rigid parameters directly against an image
//! similarity measure (SSD over a subsampled lattice) with a
//! pattern-search / coordinate-descent scheme: try ± the current step
//! on each parameter, keep improvements, halve the step when stuck.

use crate::geometry::RigidTransform;
use crate::volume::Volume;

/// Optimiser knobs.
#[derive(Debug, Clone)]
pub struct IntensityParams {
    /// Evaluate the similarity on every `lattice_step`-th voxel.
    pub lattice_step: usize,
    /// Initial rotation step (radians) and translation step (voxels).
    pub rot_step: f64,
    pub trans_step: f64,
    /// Stop when both steps shrink below these.
    pub min_rot_step: f64,
    pub min_trans_step: f64,
    pub max_evaluations: usize,
}

impl Default for IntensityParams {
    fn default() -> Self {
        IntensityParams {
            lattice_step: 2,
            rot_step: 0.04,
            trans_step: 1.0,
            min_rot_step: 2e-4,
            min_trans_step: 5e-3,
            max_evaluations: 4000,
        }
    }
}

/// SSD between `floating` voxels and the `reference` sampled through
/// `t⁻¹` (so the minimum sits at the transform that moved reference
/// into floating). Normalised per lattice point.
pub fn similarity_ssd(
    reference: &Volume,
    floating: &Volume,
    t: RigidTransform,
    lattice_step: usize,
) -> f64 {
    let inv = t.inverse();
    let mut acc = 0.0f64;
    let mut n = 0usize;
    for z in (1..floating.nz.saturating_sub(1)).step_by(lattice_step) {
        for y in (1..floating.ny.saturating_sub(1)).step_by(lattice_step) {
            for x in (1..floating.nx.saturating_sub(1)).step_by(lattice_step) {
                let p = floating.to_physical(x, y, z);
                let r = reference.sample(inv.apply(p)) as f64;
                let f = floating.get(x, y, z) as f64;
                acc += (r - f) * (r - f);
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Register `reference` onto `floating` starting from `init`.
pub fn intensity_register(
    reference: &Volume,
    floating: &Volume,
    init: RigidTransform,
    params: &IntensityParams,
) -> RigidTransform {
    // Parameter vector [rx, ry, rz, tx, ty, tz]; `init` seeds the
    // translation and rotation via composition at the end, so the
    // search itself works in a local frame around `init`.
    let mut base = init;
    let mut p = [0.0f64; 6];
    let cost = |delta: &[f64; 6], base: RigidTransform| {
        let t = base.compose(RigidTransform::from_params(
            delta[0], delta[1], delta[2], delta[3], delta[4], delta[5],
        ));
        similarity_ssd(reference, floating, t, params.lattice_step)
    };
    let mut best = cost(&p, base);
    let mut rot_step = params.rot_step;
    let mut trans_step = params.trans_step;
    let mut evals = 1usize;
    while (rot_step > params.min_rot_step || trans_step > params.min_trans_step)
        && evals < params.max_evaluations
    {
        let mut improved = false;
        for i in 0..6 {
            let step = if i < 3 { rot_step } else { trans_step };
            for sign in [1.0, -1.0] {
                let mut trial = p;
                trial[i] += sign * step;
                let c = cost(&trial, base);
                evals += 1;
                if c < best {
                    best = c;
                    p = trial;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            rot_step /= 2.0;
            trans_step /= 2.0;
        } else if p.iter().map(|v| v.abs()).fold(0.0, f64::max) > 4.0 * params.trans_step {
            // Re-anchor to keep the local parametrisation small.
            base = base.compose(RigidTransform::from_params(
                p[0], p[1], p[2], p[3], p[4], p[5],
            ));
            p = [0.0; 6];
        }
    }
    base.compose(RigidTransform::from_params(
        p[0], p[1], p[2], p[3], p[4], p[5],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::{brain_phantom, PhantomConfig};

    fn phantom() -> Volume {
        brain_phantom(
            &PhantomConfig {
                noise: 0.0,
                ..Default::default()
            },
            11,
        )
    }

    #[test]
    fn similarity_is_zero_at_truth_on_noiseless_pair() {
        let reference = phantom();
        let truth = RigidTransform::from_params(0.0, 0.0, 0.0, 1.0, 0.0, 0.0);
        let floating = reference.resample(truth);
        let at_truth = similarity_ssd(&reference, &floating, truth, 1);
        let at_id = similarity_ssd(&reference, &floating, RigidTransform::IDENTITY, 1);
        assert!(
            at_truth < at_id * 0.05,
            "truth {at_truth} vs identity {at_id}"
        );
    }

    #[test]
    fn recovers_translation_from_identity_start() {
        let reference = phantom();
        let truth = RigidTransform::from_params(0.0, 0.0, 0.0, 1.5, -1.0, 0.5);
        let floating = reference.resample(truth);
        let est = intensity_register(
            &reference,
            &floating,
            RigidTransform::IDENTITY,
            &IntensityParams::default(),
        );
        assert!(
            est.translation_error(truth) < 0.3,
            "err {}",
            est.translation_error(truth)
        );
        assert!(est.rotation_error(truth) < 0.03);
    }

    #[test]
    fn recovers_small_rotation_plus_translation() {
        let cfg = PhantomConfig {
            nx: 36,
            ny: 36,
            nz: 18,
            noise: 0.0,
            lesions: 3,
        };
        let reference = brain_phantom(&cfg, 12);
        let truth = RigidTransform::from_params(0.0, 0.0, 0.06, 1.0, 0.5, 0.0);
        let floating = reference.resample(truth);
        let est = intensity_register(
            &reference,
            &floating,
            RigidTransform::IDENTITY,
            &IntensityParams::default(),
        );
        assert!(
            est.rotation_error(truth) < 0.03,
            "rot err {}",
            est.rotation_error(truth)
        );
        assert!(
            est.translation_error(truth) < 0.5,
            "trans err {}",
            est.translation_error(truth)
        );
    }

    #[test]
    fn good_initialisation_is_not_degraded() {
        let reference = phantom();
        let truth = RigidTransform::from_params(0.03, -0.02, 0.04, 0.8, -0.4, 0.6);
        let floating = reference.resample(truth);
        let est = intensity_register(&reference, &floating, truth, &IntensityParams::default());
        assert!(est.rotation_error(truth) < 0.02);
        assert!(est.translation_error(truth) < 0.3);
    }

    #[test]
    fn lattice_step_trades_cost_for_fidelity() {
        let reference = phantom();
        let floating = reference.clone();
        // Identity is optimal for identical images at any lattice step.
        for step in [1, 2, 4] {
            let s = similarity_ssd(&reference, &floating, RigidTransform::IDENTITY, step);
            assert!(s < 1e-9, "step {step}: {s}");
        }
    }
}
