//! # moteur-registration
//!
//! The Bronze-Standard medical-image workload of the paper's §4.2,
//! rebuilt from scratch: synthetic T1 brain phantoms with known
//! ground-truth rigid motions and working stand-ins for the paper's
//! registration algorithms —
//!
//! | paper service | here |
//! |---|---|
//! | `crestLines` (pre-processing) | [`features::extract_crest_points`] |
//! | `crestMatch` (first registration, initialiser) | [`icp::icp`] with [`icp::IcpParams::coarse`] |
//! | `PFMatchICP` | [`icp::icp`] with [`icp::IcpParams::matching`] |
//! | `PFRegister` | [`icp::icp`] with [`icp::IcpParams::refinement`] |
//! | `Baladin` (block matching) | [`block::block_match`] |
//! | `Yasmina` (intensity-based) | [`intensity::intensity_register`] |
//! | `MultiTransfoTest` (synchronization) | [`bronze::bronze_standard`] |
//!
//! The crate is dependency-free and independent of the enactor; the
//! `bronze_standard` example in the repository root wires these
//! functions into the Fig. 9 workflow as MOTEUR local services.
//!
//! ```
//! use moteur_registration::prelude::*;
//!
//! let cfg = PhantomConfig { noise: 0.0, ..Default::default() };
//! let pair = image_pair(&cfg, 42);
//! // Feature-based registration: crestLines → crestMatch.
//! let thr = auto_threshold(&pair.reference, 1.0);
//! let ref_pts = extract_crest_points(&pair.reference, 1, thr);
//! let float_pts = extract_crest_points(&pair.floating, 1, thr);
//! let est = icp(&ref_pts, &float_pts, RigidTransform::IDENTITY, &IcpParams::coarse());
//! assert!(est.transform.rotation_error(pair.truth) < 0.15);
//! ```

pub mod block;
pub mod bronze;
pub mod features;
pub mod fit;
pub mod geometry;
pub mod icp;
pub mod intensity;
pub mod phantom;
pub mod pyramid;
pub mod rng;
pub mod volume;

pub use block::{block_match, BlockMatchParams};
pub use bronze::{bronze_standard, AlgorithmAccuracy, AlgorithmResult, BronzeReport, PairResults};
pub use features::{auto_threshold, extract_crest_points};
pub use fit::{fit_rigid, rms_residual};
pub use geometry::{mean_rotation, mean_transform, Quaternion, RigidTransform, Vec3};
pub use icp::{icp, IcpParams, IcpResult};
pub use intensity::{intensity_register, similarity_ssd, IntensityParams};
pub use phantom::{brain_phantom, image_pair, random_rigid_motion, ImagePair, PhantomConfig};
pub use pyramid::{downsample, pyramid_register};
pub use rng::SmallRng;
pub use volume::Volume;

/// Common imports.
pub mod prelude {
    pub use crate::block::{block_match, BlockMatchParams};
    pub use crate::bronze::{bronze_standard, AlgorithmResult, PairResults};
    pub use crate::features::{auto_threshold, extract_crest_points};
    pub use crate::geometry::{mean_transform, Quaternion, RigidTransform, Vec3};
    pub use crate::icp::{icp, IcpParams};
    pub use crate::intensity::{intensity_register, IntensityParams};
    pub use crate::phantom::{brain_phantom, image_pair, ImagePair, PhantomConfig};
    pub use crate::volume::Volume;
}
