//! 3-D geometry: vectors, quaternions and rigid transforms.
//!
//! Medical image rigid registration searches a 6-parameter transform
//! (3 rotation angles, 3 translations — paper §4.2). Rotations are
//! represented as unit quaternions, which makes composition, inversion,
//! distance metrics and averaging (for the Bronze Standard) clean.

use std::ops::{Add, Mul, Neg, Sub};

/// A 3-vector (positions, translations, directions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        self * -1.0
    }
}

/// A unit quaternion representing a 3-D rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quaternion {
    pub w: f64,
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Quaternion {
    pub const IDENTITY: Quaternion = Quaternion {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Rotation of `angle` radians about (a normalised copy of) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let a = axis.normalized();
        let (s, c) = (angle / 2.0).sin_cos();
        Quaternion {
            w: c,
            x: a.x * s,
            y: a.y * s,
            z: a.z * s,
        }
    }

    /// Intrinsic XYZ Euler angles (radians) — the "3 rotation angles"
    /// of the paper's 6-parameter search space.
    pub fn from_euler(rx: f64, ry: f64, rz: f64) -> Self {
        let qx = Quaternion::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), rx);
        let qy = Quaternion::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), ry);
        let qz = Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), rz);
        (qz * qy * qx).normalized()
    }

    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    pub fn normalized(self) -> Quaternion {
        let n = self.norm();
        if n == 0.0 {
            Quaternion::IDENTITY
        } else {
            Quaternion {
                w: self.w / n,
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        }
    }

    pub fn conjugate(self) -> Quaternion {
        Quaternion {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotate a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q (0,v) q*
        let u = Vec3::new(self.x, self.y, self.z);
        let t = u.cross(v) * 2.0;
        v + t * self.w + u.cross(t)
    }

    /// Rotation angle (radians) of this quaternion, in [0, π].
    pub fn angle(self) -> f64 {
        let q = if self.w < 0.0 { -self } else { self };
        2.0 * q.w.clamp(-1.0, 1.0).acos()
    }

    /// Geodesic rotation distance to another quaternion (radians).
    pub fn distance(self, other: Quaternion) -> f64 {
        (self.conjugate() * other).normalized().angle()
    }
}

impl Mul for Quaternion {
    type Output = Quaternion;
    fn mul(self, o: Quaternion) -> Quaternion {
        Quaternion {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }
}

impl Neg for Quaternion {
    type Output = Quaternion;
    fn neg(self) -> Quaternion {
        Quaternion {
            w: -self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

/// A rigid transform: rotation followed by translation,
/// `p ↦ R·p + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidTransform {
    pub rotation: Quaternion,
    pub translation: Vec3,
}

impl RigidTransform {
    pub const IDENTITY: RigidTransform = RigidTransform {
        rotation: Quaternion::IDENTITY,
        translation: Vec3::ZERO,
    };

    pub fn new(rotation: Quaternion, translation: Vec3) -> Self {
        RigidTransform {
            rotation: rotation.normalized(),
            translation,
        }
    }

    /// The paper's 6-parameter form: 3 Euler angles + 3 translations.
    pub fn from_params(rx: f64, ry: f64, rz: f64, tx: f64, ty: f64, tz: f64) -> Self {
        RigidTransform::new(Quaternion::from_euler(rx, ry, rz), Vec3::new(tx, ty, tz))
    }

    pub fn apply(self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Composition: `(a ∘ b)(p) = a(b(p))`.
    pub fn compose(self, b: RigidTransform) -> RigidTransform {
        RigidTransform::new(
            self.rotation * b.rotation,
            self.rotation.rotate(b.translation) + self.translation,
        )
    }

    pub fn inverse(self) -> RigidTransform {
        let r_inv = self.rotation.conjugate();
        RigidTransform::new(r_inv, -r_inv.rotate(self.translation))
    }

    /// Rotation part of the distance to `other` (radians).
    pub fn rotation_error(self, other: RigidTransform) -> f64 {
        self.rotation.distance(other.rotation)
    }

    /// Translation part of the distance to `other`.
    pub fn translation_error(self, other: RigidTransform) -> f64 {
        self.translation.distance(other.translation)
    }
}

/// Quaternion averaging for the Bronze Standard's mean registration:
/// normalised sum with sign alignment — a good approximation of the
/// Fréchet mean for the small mutual angles of consistent registrations.
pub fn mean_rotation(rotations: &[Quaternion]) -> Quaternion {
    assert!(!rotations.is_empty(), "mean of no rotations");
    let reference = rotations[0];
    let mut acc = Quaternion {
        w: 0.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    for &q in rotations {
        // Align hemispheres: q and −q are the same rotation.
        let dot = q.w * reference.w + q.x * reference.x + q.y * reference.y + q.z * reference.z;
        let q = if dot < 0.0 { -q } else { q };
        acc = Quaternion {
            w: acc.w + q.w,
            x: acc.x + q.x,
            y: acc.y + q.y,
            z: acc.z + q.z,
        };
    }
    acc.normalized()
}

/// Mean rigid transform: averaged rotation + averaged translation.
pub fn mean_transform(transforms: &[RigidTransform]) -> RigidTransform {
    assert!(!transforms.is_empty(), "mean of no transforms");
    let rotations: Vec<Quaternion> = transforms.iter().map(|t| t.rotation).collect();
    let mut t_acc = Vec3::ZERO;
    for t in transforms {
        t_acc = t_acc + t.translation;
    }
    RigidTransform::new(
        mean_rotation(&rotations),
        t_acc * (1.0 / transforms.len() as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-9;

    fn assert_vec_close(a: Vec3, b: Vec3, eps: f64) {
        assert!(a.distance(b) < eps, "{a:?} != {b:?}");
    }

    #[test]
    fn vec_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < EPS);
        assert_vec_close(
            Vec3::new(0.0, 0.0, 2.0).normalized(),
            Vec3::new(0.0, 0.0, 1.0),
            EPS,
        );
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn quaternion_rotates_basis_vectors() {
        // 90° about z: x → y.
        let q = Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        assert_vec_close(
            q.rotate(Vec3::new(1.0, 0.0, 0.0)),
            Vec3::new(0.0, 1.0, 0.0),
            1e-12,
        );
    }

    #[test]
    fn quaternion_composition_order() {
        let qz = Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        let qx = Quaternion::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), FRAC_PI_2);
        // (qx * qz) means: rotate by qz first, then qx.
        let v = (qx * qz).rotate(Vec3::new(1.0, 0.0, 0.0));
        assert_vec_close(v, Vec3::new(0.0, 0.0, 1.0), 1e-12);
    }

    #[test]
    fn quaternion_angle_and_distance() {
        let q = Quaternion::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.3);
        assert!((q.angle() - 0.3).abs() < 1e-12);
        assert!(
            ((-q).angle() - 0.3).abs() < 1e-12,
            "−q is the same rotation"
        );
        let p = Quaternion::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.5);
        assert!((q.distance(p) - 0.2).abs() < 1e-9);
        assert!((q.distance(q)).abs() < 1e-9);
    }

    #[test]
    fn euler_angles_match_axis_rotations() {
        let q = Quaternion::from_euler(0.0, 0.0, FRAC_PI_2);
        assert_vec_close(
            q.rotate(Vec3::new(1.0, 0.0, 0.0)),
            Vec3::new(0.0, 1.0, 0.0),
            1e-12,
        );
        let q = Quaternion::from_euler(FRAC_PI_2, 0.0, 0.0);
        assert_vec_close(
            q.rotate(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(0.0, 0.0, 1.0),
            1e-12,
        );
    }

    #[test]
    fn transform_apply_compose_inverse() {
        let a = RigidTransform::from_params(0.1, -0.2, 0.3, 1.0, 2.0, 3.0);
        let b = RigidTransform::from_params(-0.3, 0.1, 0.2, -1.0, 0.5, 0.0);
        let p = Vec3::new(4.0, -2.0, 7.0);
        // Composition law.
        assert_vec_close(a.compose(b).apply(p), a.apply(b.apply(p)), 1e-9);
        // Inverse law.
        assert_vec_close(a.inverse().apply(a.apply(p)), p, 1e-9);
        let id = a.compose(a.inverse());
        assert!(id.rotation_error(RigidTransform::IDENTITY) < 1e-9);
        assert!(id.translation_error(RigidTransform::IDENTITY) < 1e-9);
    }

    #[test]
    fn identity_is_neutral() {
        let a = RigidTransform::from_params(0.2, 0.1, -0.4, 5.0, -3.0, 2.0);
        let p = Vec3::new(1.0, 1.0, 1.0);
        assert_vec_close(
            RigidTransform::IDENTITY.compose(a).apply(p),
            a.apply(p),
            1e-12,
        );
        assert_vec_close(
            a.compose(RigidTransform::IDENTITY).apply(p),
            a.apply(p),
            1e-12,
        );
    }

    #[test]
    fn rigid_transform_preserves_distances() {
        let t = RigidTransform::from_params(0.4, -0.3, 0.7, 10.0, -5.0, 2.0);
        let p = Vec3::new(1.0, 2.0, 3.0);
        let q = Vec3::new(-4.0, 0.0, 6.0);
        assert!((t.apply(p).distance(t.apply(q)) - p.distance(q)).abs() < 1e-9);
    }

    #[test]
    fn mean_rotation_of_identical_is_identity_of_spread_is_between() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), 0.2);
        assert!(mean_rotation(&[q, q, q]).distance(q) < 1e-12);
        let a = Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.1);
        let b = Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.3);
        let m = mean_rotation(&[a, b]);
        assert!((m.angle() - 0.2).abs() < 1e-3, "mean angle {}", m.angle());
    }

    #[test]
    fn mean_rotation_handles_hemisphere_flips() {
        let q = Quaternion::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.2);
        let m = mean_rotation(&[q, -q, q]);
        assert!(m.distance(q) < 1e-9, "−q must be treated as q");
    }

    #[test]
    fn mean_transform_averages_both_parts() {
        let a = RigidTransform::from_params(0.0, 0.0, 0.1, 1.0, 0.0, 0.0);
        let b = RigidTransform::from_params(0.0, 0.0, 0.3, 3.0, 0.0, 0.0);
        let m = mean_transform(&[a, b]);
        assert!((m.rotation.angle() - 0.2).abs() < 1e-3);
        assert!((m.translation.x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn angle_at_pi_is_handled() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 0.0, 0.0), PI);
        assert!((q.angle() - PI).abs() < 1e-9);
    }
}
