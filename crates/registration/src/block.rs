//! Block matching — the `Baladin` algorithm stand-in.
//!
//! Splits the reference image into small blocks, finds each block's
//! best integer displacement in the floating image by exhaustive local
//! SSD search, then fits a rigid transform to the displacement field by
//! least squares (Horn). Low-variance blocks (air, flat tissue) are
//! skipped as they carry no signal.

use crate::fit::fit_rigid;
use crate::geometry::{RigidTransform, Vec3};
use crate::volume::Volume;

/// Block-matching knobs.
#[derive(Debug, Clone)]
pub struct BlockMatchParams {
    /// Block edge length (voxels).
    pub block: usize,
    /// Lattice stride between block origins.
    pub stride: usize,
    /// Search radius (voxels, per axis).
    pub search: i32,
    /// Minimum intensity variance for a block to participate.
    pub min_variance: f64,
}

impl Default for BlockMatchParams {
    fn default() -> Self {
        BlockMatchParams {
            block: 4,
            stride: 4,
            search: 4,
            min_variance: 50.0,
        }
    }
}

/// Estimate the rigid transform moving `reference` onto `floating`.
/// Returns `None` when too few informative blocks exist.
pub fn block_match(
    reference: &Volume,
    floating: &Volume,
    params: &BlockMatchParams,
) -> Option<RigidTransform> {
    assert_eq!(
        (reference.nx, reference.ny, reference.nz),
        (floating.nx, floating.ny, floating.nz),
        "block matching requires equally shaped volumes"
    );
    let b = params.block;
    let s = params.search;
    let mut pairs: Vec<(Vec3, Vec3)> = Vec::new();
    let max_x = reference.nx.saturating_sub(b);
    let max_y = reference.ny.saturating_sub(b);
    let max_z = reference.nz.saturating_sub(b);
    for z0 in (0..=max_z).step_by(params.stride) {
        for y0 in (0..=max_y).step_by(params.stride) {
            for x0 in (0..=max_x).step_by(params.stride) {
                if block_variance(reference, x0, y0, z0, b) < params.min_variance {
                    continue;
                }
                let mut best = f64::INFINITY;
                let mut best_norm = i32::MAX;
                let mut best_d = (0i32, 0i32, 0i32);
                for dz in -s..=s {
                    for dy in -s..=s {
                        for dx in -s..=s {
                            let (fx, fy, fz) = (
                                x0 as i64 + dx as i64,
                                y0 as i64 + dy as i64,
                                z0 as i64 + dz as i64,
                            );
                            if fx < 0
                                || fy < 0
                                || fz < 0
                                || fx as usize + b > floating.nx
                                || fy as usize + b > floating.ny
                                || fz as usize + b > floating.nz
                            {
                                continue;
                            }
                            let ssd = block_ssd(
                                reference,
                                (x0, y0, z0),
                                floating,
                                (fx as usize, fy as usize, fz as usize),
                                b,
                            );
                            // Prefer the smaller displacement on SSD
                            // ties (symmetric anatomy can alias).
                            let norm = dx * dx + dy * dy + dz * dz;
                            if ssd < best - 1e-9 || (ssd <= best + 1e-9 && norm < best_norm) {
                                best = ssd;
                                best_norm = norm;
                                best_d = (dx, dy, dz);
                            }
                        }
                    }
                }
                if best.is_finite() {
                    let half = (b as f64 - 1.0) / 2.0;
                    let centre = Vec3::new(x0 as f64 + half, y0 as f64 + half, z0 as f64 + half)
                        - reference.center();
                    let moved =
                        centre + Vec3::new(best_d.0 as f64, best_d.1 as f64, best_d.2 as f64);
                    pairs.push((centre, moved));
                }
            }
        }
    }
    fit_rigid(&pairs)
}

fn block_variance(v: &Volume, x0: usize, y0: usize, z0: usize, b: usize) -> f64 {
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    for z in z0..z0 + b {
        for y in y0..y0 + b {
            for x in x0..x0 + b {
                let val = v.get(x, y, z) as f64;
                sum += val;
                sum2 += val * val;
            }
        }
    }
    let n = (b * b * b) as f64;
    (sum2 / n - (sum / n) * (sum / n)).max(0.0)
}

fn block_ssd(
    a: &Volume,
    (ax, ay, az): (usize, usize, usize),
    b: &Volume,
    (bx, by, bz): (usize, usize, usize),
    size: usize,
) -> f64 {
    let mut acc = 0.0f64;
    for dz in 0..size {
        for dy in 0..size {
            for dx in 0..size {
                let d =
                    (a.get(ax + dx, ay + dy, az + dz) - b.get(bx + dx, by + dy, bz + dz)) as f64;
                acc += d * d;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Quaternion;
    use crate::phantom::{brain_phantom, PhantomConfig};

    #[test]
    fn recovers_pure_integer_translation() {
        let cfg = PhantomConfig {
            noise: 0.0,
            ..Default::default()
        };
        let reference = brain_phantom(&cfg, 1);
        let truth = RigidTransform::new(Quaternion::IDENTITY, Vec3::new(2.0, -1.0, 1.0));
        let floating = reference.resample(truth);
        let t = block_match(&reference, &floating, &BlockMatchParams::default()).unwrap();
        assert!(
            t.translation_error(truth) < 0.6,
            "err {}",
            t.translation_error(truth)
        );
        assert!(t.rotation_error(truth) < 0.05);
    }

    #[test]
    fn recovers_small_rotation_approximately() {
        let cfg = PhantomConfig {
            nx: 40,
            ny: 40,
            nz: 20,
            noise: 0.0,
            lesions: 4,
        };
        let reference = brain_phantom(&cfg, 2);
        let truth = RigidTransform::from_params(0.0, 0.0, 0.08, 1.0, 0.0, 0.0);
        let floating = reference.resample(truth);
        let t = block_match(&reference, &floating, &BlockMatchParams::default()).unwrap();
        assert!(
            t.rotation_error(truth) < 0.06,
            "rot err {}",
            t.rotation_error(truth)
        );
        assert!(
            t.translation_error(truth) < 1.2,
            "trans err {}",
            t.translation_error(truth)
        );
    }

    #[test]
    fn flat_volume_yields_none() {
        let v = Volume::from_fn(16, 16, 16, |_, _, _| 3.0);
        assert!(block_match(&v, &v, &BlockMatchParams::default()).is_none());
    }

    #[test]
    fn identity_on_identical_images() {
        let cfg = PhantomConfig {
            noise: 0.0,
            ..Default::default()
        };
        let v = brain_phantom(&cfg, 3);
        // The symmetric phantom lets a few blocks alias onto mirror
        // positions with equal SSD, so the fit is near- but not
        // exactly-identity.
        let t = block_match(&v, &v, &BlockMatchParams::default()).unwrap();
        assert!(t.rotation_error(RigidTransform::IDENTITY) < 0.02);
        assert!(t.translation_error(RigidTransform::IDENTITY) < 0.3);
    }

    #[test]
    #[should_panic(expected = "equally shaped")]
    fn shape_mismatch_panics() {
        block_match(
            &Volume::new(8, 8, 8),
            &Volume::new(9, 8, 8),
            &BlockMatchParams::default(),
        );
    }
}
