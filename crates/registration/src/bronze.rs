//! The Bronze-Standard accuracy assessment (paper §4.2,
//! `MultiTransfoTest`).
//!
//! Without ground truth, registration accuracy is assessed
//! statistically: register many image pairs with many algorithms, take
//! the per-pair mean transform as the "bronze standard", and score each
//! algorithm by its deviation from the mean of the *other* algorithms
//! (a leave-one-out comparison, so an algorithm is not rewarded for
//! agreeing with itself).

use crate::geometry::{mean_transform, RigidTransform};

/// One algorithm's result on one image pair.
#[derive(Debug, Clone)]
pub struct AlgorithmResult {
    pub algorithm: String,
    pub transform: RigidTransform,
}

/// All algorithms' results on one image pair.
#[derive(Debug, Clone)]
pub struct PairResults {
    pub pair_id: usize,
    pub results: Vec<AlgorithmResult>,
}

/// Accuracy of one algorithm across the data set.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmAccuracy {
    pub algorithm: String,
    /// Mean rotation deviation from the leave-one-out mean (degrees).
    pub rotation_error_deg: f64,
    /// Mean translation deviation (voxels/mm).
    pub translation_error: f64,
    pub pairs: usize,
}

/// The `MultiTransfoTest` report: per-algorithm accuracies plus the
/// bronze-standard mean transforms themselves.
#[derive(Debug, Clone)]
pub struct BronzeReport {
    pub accuracies: Vec<AlgorithmAccuracy>,
    pub mean_transforms: Vec<(usize, RigidTransform)>,
}

/// Compute the bronze standard over per-pair multi-algorithm results.
/// Pairs with fewer than two algorithms are skipped (no leave-one-out
/// reference exists).
pub fn bronze_standard(pairs: &[PairResults]) -> BronzeReport {
    let mut names: Vec<String> = Vec::new();
    for pair in pairs {
        for r in &pair.results {
            if !names.contains(&r.algorithm) {
                names.push(r.algorithm.clone());
            }
        }
    }
    let mut rot_sums = vec![0.0f64; names.len()];
    let mut trans_sums = vec![0.0f64; names.len()];
    let mut counts = vec![0usize; names.len()];
    let mut means = Vec::new();
    for pair in pairs {
        if pair.results.len() < 2 {
            continue;
        }
        let all: Vec<RigidTransform> = pair.results.iter().map(|r| r.transform).collect();
        means.push((pair.pair_id, mean_transform(&all)));
        for (k, r) in pair.results.iter().enumerate() {
            let others: Vec<RigidTransform> = pair
                .results
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != k)
                .map(|(_, o)| o.transform)
                .collect();
            let reference = mean_transform(&others);
            let idx = names
                .iter()
                .position(|n| *n == r.algorithm)
                .expect("collected above");
            rot_sums[idx] += r.transform.rotation_error(reference).to_degrees();
            trans_sums[idx] += r.transform.translation_error(reference);
            counts[idx] += 1;
        }
    }
    let accuracies = names
        .into_iter()
        .enumerate()
        .map(|(i, algorithm)| AlgorithmAccuracy {
            algorithm,
            rotation_error_deg: if counts[i] == 0 {
                0.0
            } else {
                rot_sums[i] / counts[i] as f64
            },
            translation_error: if counts[i] == 0 {
                0.0
            } else {
                trans_sums[i] / counts[i] as f64
            },
            pairs: counts[i],
        })
        .collect();
    BronzeReport {
        accuracies,
        mean_transforms: means,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RigidTransform;

    fn pair(id: usize, transforms: &[(&str, RigidTransform)]) -> PairResults {
        PairResults {
            pair_id: id,
            results: transforms
                .iter()
                .map(|(n, t)| AlgorithmResult {
                    algorithm: n.to_string(),
                    transform: *t,
                })
                .collect(),
        }
    }

    #[test]
    fn perfect_agreement_gives_zero_errors() {
        let t = RigidTransform::from_params(0.1, 0.0, 0.0, 1.0, 2.0, 3.0);
        let report = bronze_standard(&[pair(0, &[("a", t), ("b", t), ("c", t)])]);
        assert_eq!(report.accuracies.len(), 3);
        for acc in &report.accuracies {
            assert!(acc.rotation_error_deg < 1e-9);
            assert!(acc.translation_error < 1e-9);
            assert_eq!(acc.pairs, 1);
        }
        assert!(report.mean_transforms[0].1.rotation_error(t) < 1e-9);
    }

    #[test]
    fn outlier_algorithm_scores_worse() {
        let good = RigidTransform::from_params(0.0, 0.0, 0.05, 1.0, 0.0, 0.0);
        let bad = RigidTransform::from_params(0.0, 0.0, 0.25, 4.0, 0.0, 0.0);
        let report = bronze_standard(&[
            pair(
                0,
                &[("a", good), ("b", good), ("c", good), ("outlier", bad)],
            ),
            pair(
                1,
                &[("a", good), ("b", good), ("c", good), ("outlier", bad)],
            ),
        ]);
        let get = |n: &str| {
            report
                .accuracies
                .iter()
                .find(|a| a.algorithm == n)
                .unwrap()
                .clone()
        };
        // Leave-one-out: the outlier deviates from the mean of the
        // three consistent results by 3× what each consistent result
        // deviates from its (outlier-contaminated) reference.
        assert!(get("outlier").rotation_error_deg > 2.5 * get("a").rotation_error_deg);
        assert!(get("outlier").translation_error > 2.5 * get("a").translation_error);
        assert_eq!(get("a").pairs, 2);
    }

    #[test]
    fn single_algorithm_pairs_are_skipped() {
        let t = RigidTransform::IDENTITY;
        let report = bronze_standard(&[pair(0, &[("only", t)])]);
        assert!(report.mean_transforms.is_empty());
        assert_eq!(report.accuracies[0].pairs, 0);
    }

    #[test]
    fn mean_transform_is_leave_in_mean() {
        let a = RigidTransform::from_params(0.0, 0.0, 0.1, 0.0, 0.0, 0.0);
        let b = RigidTransform::from_params(0.0, 0.0, 0.3, 0.0, 0.0, 0.0);
        let report = bronze_standard(&[pair(3, &[("a", a), ("b", b)])]);
        assert_eq!(report.mean_transforms[0].0, 3);
        assert!((report.mean_transforms[0].1.rotation.angle() - 0.2).abs() < 1e-3);
    }

    #[test]
    fn empty_input_gives_empty_report() {
        let report = bronze_standard(&[]);
        assert!(report.accuracies.is_empty());
        assert!(report.mean_transforms.is_empty());
    }
}
