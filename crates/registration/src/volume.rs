//! 3-D scalar volumes with trilinear sampling and rigid resampling.
//!
//! The paper's images are 256×256×60 T1 brain MRIs; the synthetic
//! workload uses the same layout at configurable (usually smaller)
//! sizes. Voxels are `f32`, coordinates are in voxel units with the
//! origin at the volume centre so rotations act about the head centre.

use crate::geometry::{RigidTransform, Vec3};

/// A dense 3-D image.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    data: Vec<f32>,
}

impl Volume {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty volume");
        Volume {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        f: impl Fn(usize, usize, usize) -> f32,
    ) -> Self {
        let mut v = Volume::new(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let val = f(x, y, z);
                    v.set(x, y, z, val);
                }
            }
        }
        v
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.idx(x, y, z)]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn voxels(&self) -> &[f32] {
        &self.data
    }

    /// Volume centre in voxel coordinates.
    pub fn center(&self) -> Vec3 {
        Vec3::new(
            (self.nx as f64 - 1.0) / 2.0,
            (self.ny as f64 - 1.0) / 2.0,
            (self.nz as f64 - 1.0) / 2.0,
        )
    }

    /// Centre-origin physical coordinates of a voxel.
    pub fn to_physical(&self, x: usize, y: usize, z: usize) -> Vec3 {
        Vec3::new(x as f64, y as f64, z as f64) - self.center()
    }

    /// Trilinear interpolation at a continuous voxel position
    /// (centre-origin coordinates). Outside the volume → 0.
    pub fn sample(&self, p: Vec3) -> f32 {
        let q = p + self.center();
        let (x, y, z) = (q.x, q.y, q.z);
        if x < 0.0 || y < 0.0 || z < 0.0 {
            return 0.0;
        }
        let (x0, y0, z0) = (x.floor() as usize, y.floor() as usize, z.floor() as usize);
        if x0 + 1 >= self.nx || y0 + 1 >= self.ny || z0 + 1 >= self.nz {
            return 0.0;
        }
        let (fx, fy, fz) = (x - x0 as f64, y - y0 as f64, z - z0 as f64);
        let mut acc = 0.0f64;
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    acc += w * self.get(x0 + dx, y0 + dy, z0 + dz) as f64;
                }
            }
        }
        acc as f32
    }

    /// Resample this volume under a rigid transform: the output voxel
    /// at position `p` takes the value of the input at `t⁻¹(p)` —
    /// i.e. the returned image is `self` *moved by* `t`.
    pub fn resample(&self, t: RigidTransform) -> Volume {
        let inv = t.inverse();
        let mut out = Volume::new(self.nx, self.ny, self.nz);
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let p = self.to_physical(x, y, z);
                    out.set(x, y, z, self.sample(inv.apply(p)));
                }
            }
        }
        out
    }

    /// Mean voxel intensity.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Sum of squared differences against another volume of equal shape.
    pub fn ssd(&self, other: &Volume) -> f64 {
        assert_eq!(
            (self.nx, self.ny, self.nz),
            (other.nx, other.ny, other.nz),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum()
    }

    /// Central-difference gradient at an interior voxel (zero on the
    /// border).
    pub fn gradient(&self, x: usize, y: usize, z: usize) -> Vec3 {
        if x == 0 || y == 0 || z == 0 || x + 1 >= self.nx || y + 1 >= self.ny || z + 1 >= self.nz {
            return Vec3::ZERO;
        }
        Vec3::new(
            (self.get(x + 1, y, z) - self.get(x - 1, y, z)) as f64 / 2.0,
            (self.get(x, y + 1, z) - self.get(x, y - 1, z)) as f64 / 2.0,
            (self.get(x, y, z + 1) - self.get(x, y, z - 1)) as f64 / 2.0,
        )
    }

    /// Nominal size in bytes of the stored image (16-bit voxels, like
    /// the paper's 7.8 MB 256×256×60 images).
    pub fn nominal_bytes(&self) -> u64 {
        (self.len() * 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Quaternion;

    #[test]
    fn get_set_roundtrip_and_layout() {
        let mut v = Volume::new(4, 3, 2);
        v.set(1, 2, 1, 7.5);
        assert_eq!(v.get(1, 2, 1), 7.5);
        assert_eq!(v.len(), 24);
        assert_eq!(v.get(0, 0, 0), 0.0);
    }

    #[test]
    fn paper_sized_volume_is_7_8_mb() {
        // 256×256×60 at 16 bits ≈ 7.8 MB (paper §4.2).
        let bytes = 256u64 * 256 * 60 * 2;
        assert_eq!(bytes, 7_864_320);
        let v = Volume::new(8, 8, 4);
        assert_eq!(v.nominal_bytes(), 8 * 8 * 4 * 2);
    }

    #[test]
    fn sample_at_voxel_centres_is_exact() {
        let v = Volume::from_fn(5, 5, 5, |x, y, z| (x + 10 * y + 100 * z) as f32);
        for z in 1..4 {
            for y in 1..4 {
                for x in 1..4 {
                    let p = v.to_physical(x, y, z);
                    assert_eq!(v.sample(p), (x + 10 * y + 100 * z) as f32);
                }
            }
        }
    }

    #[test]
    fn sample_interpolates_linearly() {
        let v = Volume::from_fn(4, 4, 4, |x, _, _| x as f32);
        let c = v.center();
        let p = Vec3::new(1.5, 1.0, 1.0) - c;
        assert!((v.sample(p) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn sample_outside_is_zero() {
        let v = Volume::from_fn(4, 4, 4, |_, _, _| 5.0);
        assert_eq!(v.sample(Vec3::new(100.0, 0.0, 0.0)), 0.0);
        assert_eq!(v.sample(Vec3::new(-100.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn identity_resample_changes_nothing_interior() {
        let v = Volume::from_fn(8, 8, 8, |x, y, z| (x * y + z) as f32);
        let r = v.resample(RigidTransform::IDENTITY);
        for z in 1..7 {
            for y in 1..7 {
                for x in 1..7 {
                    assert!((r.get(x, y, z) - v.get(x, y, z)).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn translation_resample_shifts_content() {
        let mut v = Volume::new(9, 9, 9);
        v.set(4, 4, 4, 10.0);
        let t = RigidTransform::new(Quaternion::IDENTITY, Vec3::new(2.0, 0.0, 0.0));
        let r = v.resample(t);
        assert!((r.get(6, 4, 4) - 10.0).abs() < 1e-5, "blob moved +2 in x");
        assert!(r.get(4, 4, 4).abs() < 1e-5);
    }

    #[test]
    fn rotation_resample_moves_off_axis_blob() {
        let mut v = Volume::new(17, 17, 17);
        v.set(12, 8, 8, 10.0); // +4 on the x axis from centre
        let t = RigidTransform::new(
            Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2),
            Vec3::ZERO,
        );
        let r = v.resample(t);
        assert!(
            (r.get(8, 12, 8) - 10.0).abs() < 1e-4,
            "blob rotated onto +y axis"
        );
    }

    #[test]
    fn ssd_zero_iff_identical() {
        let v = Volume::from_fn(5, 5, 5, |x, y, z| (x + y + z) as f32);
        assert_eq!(v.ssd(&v), 0.0);
        let mut w = v.clone();
        w.set(0, 0, 0, 99.0);
        assert!(v.ssd(&w) > 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn ssd_rejects_shape_mismatch() {
        Volume::new(2, 2, 2).ssd(&Volume::new(3, 2, 2));
    }

    #[test]
    fn gradient_of_linear_ramp() {
        let v = Volume::from_fn(6, 6, 6, |x, y, z| (2 * x + 3 * y + 5 * z) as f32);
        let g = v.gradient(3, 3, 3);
        assert!((g.x - 2.0).abs() < 1e-6);
        assert!((g.y - 3.0).abs() < 1e-6);
        assert!((g.z - 5.0).abs() < 1e-6);
        assert_eq!(v.gradient(0, 3, 3), Vec3::ZERO, "border gradient is zero");
    }

    #[test]
    fn mean_intensity() {
        let v = Volume::from_fn(2, 2, 2, |x, _, _| x as f32);
        assert!((v.mean() - 0.5).abs() < 1e-9);
    }
}
