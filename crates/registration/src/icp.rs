//! Iterative closest point on feature clouds.
//!
//! One parametrisable implementation serves three of the paper's
//! algorithms:
//!
//! - `crestMatch` — a coarse pass (few iterations, generous pairing
//!   radius) producing the initialisation for the other methods;
//! - `PFMatchICP` — the full point-feature matching run;
//! - `PFRegister` — the tight refinement of PFMatchICP's estimate.

use crate::fit::{fit_rigid, rms_residual};
use crate::geometry::{RigidTransform, Vec3};

/// ICP knobs.
#[derive(Debug, Clone)]
pub struct IcpParams {
    pub max_iterations: usize,
    /// Reject pairs farther apart than this (voxel units).
    pub max_pair_distance: f64,
    /// Trimmed ICP: keep only this fraction of the closest pairs each
    /// iteration. Discards features that exist in only one image
    /// (noise maxima, structures clipped at the volume boundary by the
    /// motion), which otherwise bias the rotation estimate.
    pub keep_fraction: f64,
    /// Stop when the transform update drops below this (radians +
    /// voxels, combined).
    pub convergence: f64,
}

impl IcpParams {
    /// Coarse matching (the `crestMatch` setting).
    pub fn coarse() -> Self {
        IcpParams {
            max_iterations: 12,
            max_pair_distance: 8.0,
            keep_fraction: 0.8,
            convergence: 1e-4,
        }
    }

    /// Full run (the `PFMatchICP` setting).
    pub fn matching() -> Self {
        IcpParams {
            max_iterations: 30,
            max_pair_distance: 5.0,
            keep_fraction: 0.7,
            convergence: 1e-6,
        }
    }

    /// Tight refinement (the `PFRegister` setting).
    pub fn refinement() -> Self {
        IcpParams {
            max_iterations: 50,
            max_pair_distance: 2.5,
            keep_fraction: 0.6,
            convergence: 1e-9,
        }
    }
}

/// ICP outcome.
#[derive(Debug, Clone)]
pub struct IcpResult {
    pub transform: RigidTransform,
    pub iterations: usize,
    pub rms: f64,
    pub pairs_used: usize,
}

/// Register `source` onto `target`: find `t` such that `t(source)`
/// aligns with `target`.
pub fn icp(
    source: &[Vec3],
    target: &[Vec3],
    init: RigidTransform,
    params: &IcpParams,
) -> IcpResult {
    let mut current = init;
    let mut rms = f64::INFINITY;
    let mut pairs_used = 0;
    let mut iterations = 0;
    for it in 0..params.max_iterations {
        iterations = it + 1;
        // Pair each transformed source point with its nearest target.
        let mut candidates: Vec<((Vec3, Vec3), f64)> = Vec::new();
        for &s in source {
            let moved = current.apply(s);
            if let Some((q, d)) = nearest(target, moved) {
                if d <= params.max_pair_distance {
                    candidates.push(((s, q), d));
                }
            }
        }
        // Trim: keep the closest fraction.
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        let keep = ((candidates.len() as f64 * params.keep_fraction).ceil() as usize)
            .clamp(3.min(candidates.len()), candidates.len());
        let pairs: Vec<(Vec3, Vec3)> = candidates[..keep].iter().map(|(p, _)| *p).collect();
        pairs_used = pairs.len();
        let Some(fit) = fit_rigid(&pairs) else { break };
        let delta = fit.rotation_error(current) + fit.translation_error(current);
        rms = rms_residual(fit, &pairs);
        current = fit;
        if delta < params.convergence {
            break;
        }
    }
    IcpResult {
        transform: current,
        iterations,
        rms,
        pairs_used,
    }
}

fn nearest(cloud: &[Vec3], p: Vec3) -> Option<(Vec3, f64)> {
    cloud
        .iter()
        .map(|&q| (q, p.distance(q)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn cloud(rng: &mut SmallRng, n: usize, spread: f64) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.range(-spread, spread),
                    rng.range(-spread, spread),
                    rng.range(-spread, spread),
                )
            })
            .collect()
    }

    #[test]
    fn recovers_small_transform_from_identity_start() {
        let mut rng = SmallRng::new(1);
        let source = cloud(&mut rng, 120, 15.0);
        let truth = RigidTransform::from_params(0.06, -0.04, 0.08, 1.0, -0.8, 0.5);
        let target: Vec<Vec3> = source.iter().map(|&p| truth.apply(p)).collect();
        let r = icp(
            &source,
            &target,
            RigidTransform::IDENTITY,
            &IcpParams::matching(),
        );
        assert!(
            r.transform.rotation_error(truth) < 1e-3,
            "rot {}",
            r.transform.rotation_error(truth)
        );
        assert!(r.transform.translation_error(truth) < 1e-2);
        assert!(r.rms < 1e-6);
        assert!(r.pairs_used > 80, "70% of 120 source points kept");
    }

    #[test]
    fn refinement_improves_a_coarse_estimate() {
        let mut rng = SmallRng::new(2);
        let source = cloud(&mut rng, 150, 12.0);
        let truth = RigidTransform::from_params(0.1, 0.05, -0.07, 2.0, 1.0, -1.5);
        // Target with a little noise.
        let target: Vec<Vec3> = source
            .iter()
            .map(|&p| truth.apply(p) + Vec3::new(rng.normal(), rng.normal(), rng.normal()) * 0.05)
            .collect();
        let coarse = icp(
            &source,
            &target,
            RigidTransform::IDENTITY,
            &IcpParams::coarse(),
        );
        let refined = icp(&source, &target, coarse.transform, &IcpParams::refinement());
        // Trimming reshuffles the pair sets, so strict monotonicity is
        // not guaranteed — but the refined estimate must be tight.
        assert!(refined.transform.rotation_error(truth) < 0.01);
        assert!(refined.transform.translation_error(truth) < 0.1);
    }

    #[test]
    fn identical_clouds_converge_immediately_to_identity() {
        let mut rng = SmallRng::new(3);
        let c = cloud(&mut rng, 50, 10.0);
        let r = icp(&c, &c, RigidTransform::IDENTITY, &IcpParams::matching());
        assert!(r.transform.rotation_error(RigidTransform::IDENTITY) < 1e-9);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn empty_clouds_return_the_initialisation() {
        let init = RigidTransform::from_params(0.1, 0.0, 0.0, 1.0, 0.0, 0.0);
        let r = icp(&[], &[], init, &IcpParams::matching());
        assert_eq!(r.transform, init);
        assert_eq!(r.pairs_used, 0);
    }

    #[test]
    fn max_pair_distance_rejects_outliers() {
        let mut rng = SmallRng::new(4);
        let mut source = cloud(&mut rng, 80, 10.0);
        let truth = RigidTransform::from_params(0.0, 0.0, 0.05, 0.5, 0.0, 0.0);
        let mut target: Vec<Vec3> = source.iter().map(|&p| truth.apply(p)).collect();
        // Inject far-away junk points into the target.
        for _ in 0..10 {
            target.push(Vec3::new(500.0 + rng.uniform(), 500.0, 500.0));
        }
        source.push(Vec3::new(-500.0, -500.0, -500.0)); // unmatched source point
        let r = icp(
            &source,
            &target,
            RigidTransform::IDENTITY,
            &IcpParams::matching(),
        );
        assert!(r.transform.rotation_error(truth) < 1e-3);
        assert!(r.pairs_used <= 80, "outlier source point must be dropped");
    }
}
