//! Small deterministic RNG for phantom generation and noise.
//!
//! Duplicated from the simulator's generator on purpose: the workload
//! crate stays dependency-free so it can be reused outside MOTEUR-RS.

/// splitmix64 — tiny, fast, and good enough for image noise.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub fn new(seed: u64) -> Self {
        SmallRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..5).map(|_| SmallRng::new(9).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|_| SmallRng::new(9).next_u64()).collect();
        assert_eq!(a, b);
        let mut r1 = SmallRng::new(1);
        let mut r2 = SmallRng::new(2);
        assert_ne!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut r = SmallRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn normal_moments() {
        let mut r = SmallRng::new(4);
        let xs: Vec<f64> = (0..20_000).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }
}
