//! Multi-resolution (pyramid) registration.
//!
//! The production registration codes the paper wraps (Baladin, Yasmina)
//! are coarse-to-fine: solve at a downsampled resolution first — where
//! the basin of attraction is wide and evaluations cheap — then refine
//! at successively finer levels, rescaling the translation between
//! levels. This module provides the 2×2×2 mean-pooling downsampler and
//! a pyramid driver around the intensity optimiser.

use crate::geometry::RigidTransform;
use crate::intensity::{intensity_register, IntensityParams};
use crate::volume::Volume;

/// 2× downsampling by mean pooling (odd trailing voxels are folded
/// into the last output cell).
pub fn downsample(v: &Volume) -> Volume {
    let (nx, ny, nz) = (v.nx.div_ceil(2), v.ny.div_ceil(2), v.nz.div_ceil(2));
    let mut out = Volume::new(nx, ny, nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut acc = 0.0f64;
                let mut n = 0usize;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (sx, sy, sz) = (2 * x + dx, 2 * y + dy, 2 * z + dz);
                            if sx < v.nx && sy < v.ny && sz < v.nz {
                                acc += v.get(sx, sy, sz) as f64;
                                n += 1;
                            }
                        }
                    }
                }
                out.set(x, y, z, (acc / n as f64) as f32);
            }
        }
    }
    out
}

/// A transform expressed in a volume's voxel frame, rescaled for a 2×
/// coarser frame: rotations are scale-invariant, translations halve.
pub fn to_coarser(t: RigidTransform) -> RigidTransform {
    RigidTransform::new(t.rotation, t.translation * 0.5)
}

/// The inverse rescaling: from a coarse frame to the 2× finer one.
pub fn to_finer(t: RigidTransform) -> RigidTransform {
    RigidTransform::new(t.rotation, t.translation * 2.0)
}

/// Coarse-to-fine intensity registration over `levels` pyramid levels
/// (1 = plain single-level).
pub fn pyramid_register(
    reference: &Volume,
    floating: &Volume,
    init: RigidTransform,
    levels: usize,
    params: &IntensityParams,
) -> RigidTransform {
    assert!(levels >= 1, "need at least one pyramid level");
    // Build both pyramids, coarsest last.
    let mut refs = vec![reference.clone()];
    let mut floats = vec![floating.clone()];
    for _ in 1..levels {
        let next_r = downsample(refs.last().expect("non-empty"));
        let next_f = downsample(floats.last().expect("non-empty"));
        // Stop early if volumes become degenerate.
        if next_r.nx < 4 || next_r.ny < 4 || next_r.nz < 4 {
            break;
        }
        refs.push(next_r);
        floats.push(next_f);
    }
    // Express the initialisation at the coarsest level.
    let mut estimate = init;
    for _ in 1..refs.len() {
        estimate = to_coarser(estimate);
    }
    // Solve coarse → fine. Coarser levels can afford denser lattices.
    for level in (0..refs.len()).rev() {
        let level_params = IntensityParams {
            lattice_step: if level == 0 { params.lattice_step } else { 1 },
            trans_step: params.trans_step,
            ..params.clone()
        };
        estimate = intensity_register(&refs[level], &floats[level], estimate, &level_params);
        if level > 0 {
            estimate = to_finer(estimate);
        }
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::{brain_phantom, PhantomConfig};

    #[test]
    fn downsample_halves_dimensions_and_preserves_mean() {
        let v = Volume::from_fn(8, 6, 4, |x, y, z| (x + y + z) as f32);
        let d = downsample(&v);
        assert_eq!((d.nx, d.ny, d.nz), (4, 3, 2));
        assert!(
            (d.mean() - v.mean()).abs() < 0.3,
            "{} vs {}",
            d.mean(),
            v.mean()
        );
    }

    #[test]
    fn downsample_handles_odd_dimensions() {
        let v = Volume::from_fn(5, 5, 3, |_, _, _| 2.0);
        let d = downsample(&v);
        assert_eq!((d.nx, d.ny, d.nz), (3, 3, 2));
        assert!(d.voxels().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn scale_conversions_are_inverse() {
        let t = RigidTransform::from_params(0.1, -0.2, 0.3, 4.0, -2.0, 1.0);
        let round = to_finer(to_coarser(t));
        assert!(round.rotation_error(t) < 1e-12);
        assert!(round.translation_error(t) < 1e-12);
    }

    #[test]
    fn pyramid_recovers_larger_motion_than_single_level() {
        // A translation large enough that the single-level optimiser's
        // 1-voxel steps wander; the pyramid sees it as ~2 voxels coarse.
        let cfg = PhantomConfig {
            nx: 40,
            ny: 40,
            nz: 20,
            noise: 0.0,
            lesions: 3,
        };
        let reference = brain_phantom(&cfg, 21);
        let truth = RigidTransform::from_params(0.0, 0.0, 0.04, 4.5, -3.5, 1.0);
        let floating = reference.resample(truth);
        let params = IntensityParams::default();
        let single = intensity_register(&reference, &floating, RigidTransform::IDENTITY, &params);
        let multi = pyramid_register(&reference, &floating, RigidTransform::IDENTITY, 3, &params);
        let e_single = single.translation_error(truth);
        let e_multi = multi.translation_error(truth);
        assert!(e_multi < 1.0, "pyramid converges: {e_multi}");
        assert!(
            e_multi <= e_single + 0.25,
            "pyramid must not be worse: {e_multi} vs {e_single}"
        );
    }

    #[test]
    fn single_level_pyramid_equals_plain_registration() {
        let cfg = PhantomConfig {
            noise: 0.0,
            ..Default::default()
        };
        let reference = brain_phantom(&cfg, 22);
        let truth = RigidTransform::from_params(0.0, 0.0, 0.02, 1.0, 0.0, 0.0);
        let floating = reference.resample(truth);
        let params = IntensityParams::default();
        let plain = intensity_register(&reference, &floating, RigidTransform::IDENTITY, &params);
        let pyr = pyramid_register(&reference, &floating, RigidTransform::IDENTITY, 1, &params);
        assert!(plain.rotation_error(pyr) < 1e-12);
        assert!(plain.translation_error(pyr) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_levels_panics() {
        let v = Volume::new(4, 4, 4);
        pyramid_register(
            &v,
            &v,
            RigidTransform::IDENTITY,
            0,
            &IntensityParams::default(),
        );
    }

    #[test]
    fn degenerate_small_volumes_stop_the_pyramid_early() {
        // 8³ can only downsample once before hitting the 4-voxel floor;
        // asking for 5 levels must still work.
        let cfg = PhantomConfig {
            nx: 8,
            ny: 8,
            nz: 8,
            noise: 0.0,
            lesions: 0,
        };
        let v = brain_phantom(&cfg, 23);
        let t = pyramid_register(
            &v,
            &v,
            RigidTransform::IDENTITY,
            5,
            &IntensityParams::default(),
        );
        assert!(t.rotation_error(RigidTransform::IDENTITY) < 0.05);
    }
}
