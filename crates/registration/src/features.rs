//! Crest-point extraction — the `crestLines` pre-processing step.
//!
//! The real CrestLines.pl extracts crest lines (extremal curvature
//! ridges); this stand-in extracts high-gradient ridge points: voxels
//! whose gradient magnitude exceeds a threshold and is a local maximum
//! among the 6-neighbourhood. The `scale` parameter (the descriptor's
//! `-s` option) subsamples the scan lattice.

use crate::geometry::Vec3;
use crate::volume::Volume;

/// Extract feature points (physical, centre-origin coordinates).
///
/// `scale` ≥ 1 visits every `scale`-th voxel; `threshold` is the
/// minimum gradient magnitude.
pub fn extract_crest_points(volume: &Volume, scale: usize, threshold: f64) -> Vec<Vec3> {
    assert!(scale >= 1, "scale must be at least 1");
    let mut points = Vec::new();
    let grad_mag = |x: usize, y: usize, z: usize| volume.gradient(x, y, z).norm();
    for z in (1..volume.nz.saturating_sub(1)).step_by(scale) {
        for y in (1..volume.ny.saturating_sub(1)).step_by(scale) {
            for x in (1..volume.nx.saturating_sub(1)).step_by(scale) {
                let g = grad_mag(x, y, z);
                if g < threshold {
                    continue;
                }
                // Local maximum among the 6-neighbourhood.
                let is_max = g >= grad_mag(x - 1, y, z)
                    && g >= grad_mag(x + 1, y, z)
                    && g >= grad_mag(x, y - 1, z)
                    && g >= grad_mag(x, y + 1, z)
                    && g >= grad_mag(x, y, z - 1)
                    && g >= grad_mag(x, y, z + 1);
                if is_max {
                    points.push(subvoxel_position(volume, x, y, z));
                }
            }
        }
    }
    points
}

/// Sub-voxel feature localisation: the gradient-magnitude-weighted
/// centroid of the 3³ neighbourhood. Without it, features snap to the
/// voxel lattice and small rotations become unrecoverable for the
/// point-based registration algorithms.
fn subvoxel_position(volume: &Volume, x: usize, y: usize, z: usize) -> Vec3 {
    let mut acc = Vec3::ZERO;
    let mut wsum = 0.0;
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let (nx, ny, nz) = (
                    (x as i64 + dx) as usize,
                    (y as i64 + dy) as usize,
                    (z as i64 + dz) as usize,
                );
                let w = volume.gradient(nx, ny, nz).norm();
                acc = acc + volume.to_physical(nx, ny, nz) * w;
                wsum += w;
            }
        }
    }
    if wsum == 0.0 {
        volume.to_physical(x, y, z)
    } else {
        acc * (1.0 / wsum)
    }
}

/// Automatic threshold: mean + `k`·std of gradient magnitude over the
/// interior lattice.
pub fn auto_threshold(volume: &Volume, k: f64) -> f64 {
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    let mut n = 0usize;
    for z in 1..volume.nz.saturating_sub(1) {
        for y in 1..volume.ny.saturating_sub(1) {
            for x in 1..volume.nx.saturating_sub(1) {
                let g = volume.gradient(x, y, z).norm();
                sum += g;
                sum2 += g * g;
                n += 1;
            }
        }
    }
    if n == 0 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let var = (sum2 / n as f64 - mean * mean).max(0.0);
    mean + k * var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::{brain_phantom, PhantomConfig};

    fn test_phantom() -> Volume {
        brain_phantom(
            &PhantomConfig {
                noise: 0.0,
                ..Default::default()
            },
            5,
        )
    }

    #[test]
    fn finds_points_on_the_skull_boundary() {
        let v = test_phantom();
        let points = extract_crest_points(&v, 1, auto_threshold(&v, 1.0));
        assert!(points.len() > 20, "found {} points", points.len());
        // Points should lie at some distance from the centre (boundary
        // features), well inside the volume bounds.
        let far = points.iter().filter(|p| p.norm() > 4.0).count();
        assert!(far * 2 > points.len(), "most features are off-centre");
    }

    #[test]
    fn higher_threshold_yields_fewer_points() {
        let v = test_phantom();
        let lo = extract_crest_points(&v, 1, 5.0).len();
        // The air→skull step produces gradients of magnitude ≳100, so a
        // threshold above it must prune some ridge points.
        let hi = extract_crest_points(&v, 1, 120.0).len();
        assert!(hi < lo, "threshold 120 ({hi}) vs 5 ({lo})");
    }

    #[test]
    fn scale_subsamples_the_lattice() {
        let v = test_phantom();
        let full = extract_crest_points(&v, 1, 10.0).len();
        let sub = extract_crest_points(&v, 2, 10.0).len();
        assert!(
            sub < full,
            "scale 2 ({sub}) must be sparser than 1 ({full})"
        );
        assert!(sub > 0);
    }

    #[test]
    fn uniform_volume_has_no_features() {
        let v = Volume::from_fn(10, 10, 10, |_, _, _| 7.0);
        assert!(extract_crest_points(&v, 1, 1.0).is_empty());
    }

    #[test]
    fn auto_threshold_is_positive_on_structured_data() {
        let v = test_phantom();
        let t = auto_threshold(&v, 2.0);
        assert!(t > 0.0);
        assert!(auto_threshold(&v, 0.0) < t);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        extract_crest_points(&Volume::new(4, 4, 4), 0, 1.0);
    }
}
