//! End-to-end registration pipeline tests on phantom image pairs: the
//! full algorithm suite must recover the known ground-truth motion, and
//! the Bronze Standard must rate all consistent algorithms as accurate.

use moteur_registration::prelude::*;
use moteur_registration::IcpParams;

fn pipeline(pair: &ImagePair) -> Vec<(&'static str, RigidTransform)> {
    let thr_ref = auto_threshold(&pair.reference, 1.0);
    let thr_float = auto_threshold(&pair.floating, 1.0);
    let ref_pts = extract_crest_points(&pair.reference, 1, thr_ref);
    let float_pts = extract_crest_points(&pair.floating, 1, thr_float);
    let crest_match = moteur_registration::icp(
        &ref_pts,
        &float_pts,
        RigidTransform::IDENTITY,
        &IcpParams::coarse(),
    );
    let pf_match = moteur_registration::icp(
        &ref_pts,
        &float_pts,
        crest_match.transform,
        &IcpParams::matching(),
    );
    let pf_register = moteur_registration::icp(
        &ref_pts,
        &float_pts,
        pf_match.transform,
        &IcpParams::refinement(),
    );
    let baladin = block_match(
        &pair.reference,
        &pair.floating,
        &BlockMatchParams::default(),
    )
    .expect("phantom has informative blocks");
    let yasmina = intensity_register(
        &pair.reference,
        &pair.floating,
        crest_match.transform,
        &IntensityParams::default(),
    );
    vec![
        ("crestMatch", crest_match.transform),
        ("PFRegister", pf_register.transform),
        ("Baladin", baladin),
        ("Yasmina", yasmina),
    ]
}

#[test]
fn all_algorithms_recover_ground_truth_motion() {
    let cfg = PhantomConfig {
        noise: 1.0,
        ..Default::default()
    };
    let pair = image_pair(&cfg, 42);
    for (name, est) in pipeline(&pair) {
        let rot = est.rotation_error(pair.truth);
        let trans = est.translation_error(pair.truth);
        assert!(
            rot < 0.13,
            "{name}: rotation error {rot} (truth angle {})",
            pair.truth.rotation.angle()
        );
        assert!(trans < 1.0, "{name}: translation error {trans}");
    }
}

#[test]
fn bronze_standard_rates_consistent_algorithms_tightly() {
    let cfg = PhantomConfig {
        noise: 1.0,
        ..Default::default()
    };
    let pairs: Vec<PairResults> = (0..3)
        .map(|i| {
            let pair = image_pair(&cfg, 100 + i as u64);
            PairResults {
                pair_id: i,
                results: pipeline(&pair)
                    .into_iter()
                    .map(|(n, t)| AlgorithmResult {
                        algorithm: n.into(),
                        transform: t,
                    })
                    .collect(),
            }
        })
        .collect();
    let report = bronze_standard(&pairs);
    assert_eq!(report.accuracies.len(), 4);
    assert_eq!(report.mean_transforms.len(), 3);
    for acc in &report.accuracies {
        assert_eq!(acc.pairs, 3);
        assert!(acc.rotation_error_deg < 10.0, "{}: {acc:?}", acc.algorithm);
        assert!(acc.translation_error < 3.0, "{}: {acc:?}", acc.algorithm);
    }
}
