use moteur_registration::prelude::*;
use moteur_registration::IcpParams;
fn main() {
    let cfg = PhantomConfig {
        noise: 1.0,
        ..Default::default()
    };
    for seed in [42u64, 100, 101, 102] {
        let pair = image_pair(&cfg, seed);
        let thr_ref = auto_threshold(&pair.reference, 1.0);
        let thr_float = auto_threshold(&pair.floating, 1.0);
        let ref_pts = extract_crest_points(&pair.reference, 1, thr_ref);
        let float_pts = extract_crest_points(&pair.floating, 1, thr_float);
        let cm = moteur_registration::icp(
            &ref_pts,
            &float_pts,
            RigidTransform::IDENTITY,
            &IcpParams::coarse(),
        );
        let pm =
            moteur_registration::icp(&ref_pts, &float_pts, cm.transform, &IcpParams::matching());
        let pr =
            moteur_registration::icp(&ref_pts, &float_pts, pm.transform, &IcpParams::refinement());
        let bl = block_match(
            &pair.reference,
            &pair.floating,
            &BlockMatchParams::default(),
        )
        .unwrap();
        let ya = intensity_register(
            &pair.reference,
            &pair.floating,
            cm.transform,
            &IntensityParams::default(),
        );
        println!(
            "seed {seed}: truth angle {:.3} trans {:.2} | pts {}/{}",
            pair.truth.rotation.angle(),
            pair.truth.translation.norm(),
            ref_pts.len(),
            float_pts.len()
        );
        for (n, t) in [
            ("cm", cm.transform),
            ("pm", pm.transform),
            ("pr", pr.transform),
            ("bl", bl),
            ("ya", ya),
        ] {
            println!(
                "  {n}: rot {:.4} trans {:.3}",
                t.rotation_error(pair.truth),
                t.translation_error(pair.truth)
            );
        }
    }
}
