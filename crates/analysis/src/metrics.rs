//! The paper's performance metrics (§5.1).
//!
//! Beyond the classic **speed-up**, the paper introduces two metrics
//! tailored to production grids, computed from the linear regression of
//! execution time against input-data-set size:
//!
//! - the **y-intercept ratio** — the intercept measures the
//!   incompressible overhead of accessing the infrastructure ("the
//!   time spent for the processing of 0 data set"); job grouping is
//!   expected to improve mostly this;
//! - the **slope ratio** — the slope measures data scalability; data
//!   parallelism is expected to improve mostly this.
//!
//! Both ratios compare a *reference* line against the *analyzed* line
//! (reference / analyzed, so > 1 means the analyzed method improves on
//! the reference).

use crate::stats::{linear_regression, Line};

/// Speed-up of `optimized` relative to `reference` (> 1 is faster).
pub fn speedup(reference_time: f64, optimized_time: f64) -> f64 {
    reference_time / optimized_time
}

/// One measured execution-time series: time (s) per data-set size.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    /// `(n_D, execution_time_seconds)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Least-squares fit of the series.
    pub fn fit(&self) -> Option<Line> {
        linear_regression(&self.points)
    }

    /// Time at a given size, if measured.
    pub fn time_at(&self, n: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(x, _)| (*x - n).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// The §5.1 comparison of two series: speed-ups at the common sizes,
/// plus the y-intercept and slope ratios of the fitted lines.
#[derive(Debug, Clone)]
pub struct SeriesComparison {
    pub reference: String,
    pub analyzed: String,
    /// `(n_D, speedup)` at every size present in both series.
    pub speedups: Vec<(f64, f64)>,
    pub y_intercept_ratio: Option<f64>,
    pub slope_ratio: Option<f64>,
}

/// Compare `analyzed` against `reference`.
pub fn compare(reference: &Series, analyzed: &Series) -> SeriesComparison {
    let speedups = reference
        .points
        .iter()
        .filter_map(|(n, t_ref)| analyzed.time_at(*n).map(|t| (*n, speedup(*t_ref, t))))
        .collect();
    let (mut y_ratio, mut s_ratio) = (None, None);
    if let (Some(fr), Some(fa)) = (reference.fit(), analyzed.fit()) {
        if fa.intercept.abs() > 1e-12 {
            y_ratio = Some(fr.intercept / fa.intercept);
        }
        if fa.slope.abs() > 1e-12 {
            s_ratio = Some(fr.slope / fa.slope);
        }
    }
    SeriesComparison {
        reference: reference.label.clone(),
        analyzed: analyzed.label.clone(),
        speedups,
        y_intercept_ratio: y_ratio,
        slope_ratio: s_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1 / Table 2 values as fixtures.
    fn paper_series(label: &str, t12: f64, t66: f64, t126: f64) -> Series {
        Series::new(label, vec![(12.0, t12), (66.0, t66), (126.0, t126)])
    }

    #[test]
    fn speedup_definition() {
        assert_eq!(speedup(100.0, 25.0), 4.0);
    }

    #[test]
    fn paper_dp_vs_nop_speedups_reproduced_from_table1() {
        // §5.2: "We obtain speed-ups of 1.86, 2.89 and 3.92".
        let nop = paper_series("NOP", 32855.0, 76354.0, 133493.0);
        let dp = paper_series("DP", 17690.0, 26437.0, 34027.0);
        let c = compare(&nop, &dp);
        let s: Vec<f64> = c
            .speedups
            .iter()
            .map(|(_, s)| (s * 100.0).round() / 100.0)
            .collect();
        assert_eq!(s, vec![1.86, 2.89, 3.92]);
    }

    #[test]
    fn paper_dp_vs_nop_ratios_reproduced_from_table2_lines() {
        // §5.2: slope ratio 6.18, y-intercept ratio 1.27 — computed
        // from the Table 2 regression values. Reproduce from raw
        // Table 1 data (the paper's own regressions round slightly).
        let nop = paper_series("NOP", 32855.0, 76354.0, 133493.0);
        let dp = paper_series("DP", 17690.0, 26437.0, 34027.0);
        let c = compare(&nop, &dp);
        assert!(
            (c.slope_ratio.unwrap() - 6.18).abs() < 0.05,
            "{:?}",
            c.slope_ratio
        );
        assert!(
            (c.y_intercept_ratio.unwrap() - 1.27).abs() < 0.03,
            "{:?}",
            c.y_intercept_ratio
        );
    }

    #[test]
    fn paper_jg_vs_nop_speedups() {
        // §5.3: JG vs NOP speed-ups 1.43, 1.12, 1.06.
        let nop = paper_series("NOP", 32855.0, 76354.0, 133493.0);
        let jg = paper_series("JG", 22990.0, 68427.0, 125503.0);
        let c = compare(&nop, &jg);
        let s: Vec<f64> = c
            .speedups
            .iter()
            .map(|(_, s)| (s * 100.0).round() / 100.0)
            .collect();
        assert_eq!(s, vec![1.43, 1.12, 1.06]);
    }

    #[test]
    fn paper_sp_dp_jg_vs_sp_dp_speedups() {
        // §5.3: 1.42, 1.34, 1.23.
        let spdp = paper_series("SP+DP", 7825.0, 12143.0, 17823.0);
        let all = paper_series("SP+DP+JG", 5524.0, 9053.0, 14547.0);
        let c = compare(&spdp, &all);
        let s: Vec<f64> = c
            .speedups
            .iter()
            .map(|(_, s)| (s * 100.0).round() / 100.0)
            .collect();
        assert_eq!(s, vec![1.42, 1.34, 1.23]);
    }

    #[test]
    fn total_speedup_is_about_nine() {
        // Abstract: "An execution time speed up of approximately 9".
        let nop = paper_series("NOP", 32855.0, 76354.0, 133493.0);
        let all = paper_series("SP+DP+JG", 5524.0, 9053.0, 14547.0);
        let c = compare(&nop, &all);
        let at126 = c.speedups.iter().find(|(n, _)| *n == 126.0).unwrap().1;
        assert!((at126 - 9.18).abs() < 0.01, "{at126}");
    }

    #[test]
    fn missing_sizes_are_skipped() {
        let a = Series::new("a", vec![(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]);
        let b = Series::new("b", vec![(1.0, 5.0), (3.0, 10.0)]);
        let c = compare(&a, &b);
        assert_eq!(c.speedups.len(), 2);
    }

    #[test]
    fn degenerate_fits_give_none_ratios() {
        let a = Series::new("a", vec![(1.0, 10.0)]);
        let b = Series::new("b", vec![(1.0, 5.0)]);
        let c = compare(&a, &b);
        assert!(c.slope_ratio.is_none());
        assert!(c.y_intercept_ratio.is_none());
    }
}
