//! ASCII line plots — the Fig. 10 renderer.

use crate::metrics::Series;

/// Render multiple series as an ASCII scatter/line chart, one marker
/// character per series, with y in hours if `y_hours` (as in Fig. 10).
pub fn render_chart(
    series: &[Series],
    width: usize,
    height: usize,
    y_hours: bool,
    x_label: &str,
) -> String {
    const MARKS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() || width < 8 || height < 4 {
        return String::new();
    }
    let scale = if y_hours { 1.0 / 3600.0 } else { 1.0 };
    let x_max = all.iter().map(|(x, _)| *x).fold(0.0, f64::max);
    let y_max = all.iter().map(|(_, y)| *y * scale).fold(0.0, f64::max);
    if x_max <= 0.0 || y_max <= 0.0 {
        return String::new();
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        // Linear interpolation between consecutive points for a line
        // impression.
        let mut pts: Vec<(f64, f64)> = s.points.iter().map(|(x, y)| (*x, *y * scale)).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        for w in pts.windows(2) {
            let steps = width * 2;
            for k in 0..=steps {
                let f = k as f64 / steps as f64;
                let x = w[0].0 + f * (w[1].0 - w[0].0);
                let y = w[0].1 + f * (w[1].1 - w[0].1);
                let cx = ((x / x_max) * (width - 1) as f64).round() as usize;
                let cy = ((y / y_max) * (height - 1) as f64).round() as usize;
                grid[height - 1 - cy][cx] = mark;
            }
        }
        for (x, y) in &pts {
            let cx = ((x / x_max) * (width - 1) as f64).round() as usize;
            let cy = ((y / y_max) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = mark;
        }
    }
    let y_unit = if y_hours { "hours" } else { "seconds" };
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_val = y_max * (height - 1 - r) as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:8.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:10}0{:>w$.0}\n", "", x_max, w = width - 1));
    out.push_str(&format!("{:10}{x_label}  (y: {y_unit})\n", ""));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:10}{} = {}\n",
            "",
            MARKS[si % MARKS.len()],
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new(
                "NOP",
                vec![(12.0, 32855.0), (66.0, 76354.0), (126.0, 133493.0)],
            ),
            Series::new(
                "SP+DP+JG",
                vec![(12.0, 5524.0), (66.0, 9053.0), (126.0, 14547.0)],
            ),
        ]
    }

    #[test]
    fn renders_markers_and_legend() {
        let out = render_chart(&demo_series(), 60, 20, true, "image pairs");
        assert!(out.contains('*'), "{out}");
        assert!(out.contains('+'), "{out}");
        assert!(out.contains("* = NOP"));
        assert!(out.contains("+ = SP+DP+JG"));
        assert!(out.contains("hours"));
    }

    #[test]
    fn faster_series_stays_below_slower_one() {
        let out = render_chart(&demo_series(), 60, 20, true, "n");
        // The last line containing '*' (highest row) must appear before
        // any '+' row (NOP is slower = higher on the chart).
        let first_star = out.lines().position(|l| l.contains('*')).unwrap();
        let first_plus = out.lines().position(|l| l.contains('+')).unwrap();
        assert!(first_star < first_plus, "{out}");
    }

    #[test]
    fn degenerate_inputs_render_empty() {
        assert_eq!(render_chart(&[], 60, 20, false, "x"), "");
        assert_eq!(render_chart(&demo_series(), 2, 2, false, "x"), "");
        let zero = vec![Series::new("z", vec![(0.0, 0.0)])];
        assert_eq!(render_chart(&zero, 60, 20, false, "x"), "");
    }
}
