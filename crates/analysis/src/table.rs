//! Aligned text tables for the experiment harnesses' stdout reports.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-padded columns and a separator under the
    /// header (first column left-aligned, the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                if c == 0 {
                    line.push_str(&format!("{:<w$}", cells[c], w = widths[c]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[c], w = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with thousands grouping, like the paper's tables.
pub fn fmt_secs(secs: f64) -> String {
    let v = secs.round() as i64;
    let s = v.abs().to_string();
    let mut grouped = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(ch);
    }
    if v < 0 {
        format!("-{grouped}")
    } else {
        grouped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Configuration", "12", "126"]);
        t.add_row(vec!["NOP".into(), "32855".into(), "133493".into()]);
        t.add_row(vec!["SP+DP+JG".into(), "5524".into(), "14547".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Configuration"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("NOP") && lines[2].contains("133493"));
        // Right-aligned numeric columns line up.
        let c1 = lines[2].rfind("133493").unwrap() + 6;
        let c2 = lines[3].rfind("14547").unwrap() + 5;
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(&["a", "b"]).add_row(vec!["x".into()]);
    }

    #[test]
    fn secs_formatting_groups_thousands() {
        assert_eq!(fmt_secs(133493.4), "133,493");
        assert_eq!(fmt_secs(884.0), "884");
        assert_eq!(fmt_secs(0.2), "0");
        assert_eq!(fmt_secs(-1234.0), "-1,234");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
