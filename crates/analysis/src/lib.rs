//! # moteur-analysis
//!
//! Analysis toolkit for the experiment harnesses: summary statistics,
//! ordinary-least-squares regression, and the paper's §5.1 metrics —
//! speed-up, **y-intercept ratio** (infrastructure-overhead gains, the
//! metric job grouping is designed to improve) and **slope ratio**
//! (data-scalability gains, the metric data parallelism is designed to
//! improve) — plus text tables and the ASCII Fig. 10 chart renderer.
//!
//! ```
//! use moteur_analysis::{compare, Series};
//!
//! // The paper's own Table 1 numbers:
//! let nop = Series::new("NOP", vec![(12.0, 32855.0), (66.0, 76354.0), (126.0, 133493.0)]);
//! let dp = Series::new("DP", vec![(12.0, 17690.0), (66.0, 26437.0), (126.0, 34027.0)]);
//! let c = compare(&nop, &dp);
//! // §5.2: data parallelism mainly improves the slope ratio (≈6.2).
//! assert!(c.slope_ratio.unwrap() > 5.0);
//! ```

pub mod bootstrap;
pub mod metrics;
pub mod plot;
pub mod stats;
pub mod table;

pub use bootstrap::{bootstrap_mean_ci, bootstrap_ratio_ci, Interval};
pub use metrics::{compare, speedup, Series, SeriesComparison};
pub use plot::render_chart;
pub use stats::{linear_regression, mean, median, std_dev, Line};
pub use table::{fmt_secs, Table};
