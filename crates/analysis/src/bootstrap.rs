//! Bootstrap confidence intervals for campaign measurements.
//!
//! Makespans on the simulated grid are max statistics with heavy right
//! tails, so normal-theory intervals mislead; percentile bootstrap over
//! seed-repeat measurements is the honest way to report "NOP is X×
//! slower ± what".

/// Deterministic splitmix64 stream for reproducible resampling (the
/// crate stays dependency-free).
struct Resampler {
    state: u64,
}

impl Resampler {
    fn new(seed: u64) -> Self {
        Resampler {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_index(&mut self, n: usize) -> usize {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z as u128 * n as u128) >> 64) as usize
    }
}

/// A two-sided percentile interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for the mean of `xs`.
///
/// `confidence` in (0, 1), e.g. 0.95. Returns `None` for empty input.
/// Deterministic for a given `seed`.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<Interval> {
    if xs.is_empty() {
        return None;
    }
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "bad confidence"
    );
    let mut rng = Resampler::new(seed);
    let mut means = Vec::with_capacity(resamples.max(1));
    for _ in 0..resamples.max(1) {
        let sum: f64 = (0..xs.len()).map(|_| xs[rng.next_index(xs.len())]).sum();
        means.push(sum / xs.len() as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    let pick = |q: f64| -> f64 {
        let idx = ((means.len() as f64 - 1.0) * q).round() as usize;
        means[idx.min(means.len() - 1)]
    };
    Some(Interval {
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
    })
}

/// Bootstrap CI for the *ratio of means* of two samples (speed-ups).
pub fn bootstrap_ratio_ci(
    numerator: &[f64],
    denominator: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<Interval> {
    if numerator.is_empty() || denominator.is_empty() {
        return None;
    }
    let mut rng = Resampler::new(seed);
    let mut ratios = Vec::with_capacity(resamples.max(1));
    for _ in 0..resamples.max(1) {
        let num: f64 = (0..numerator.len())
            .map(|_| numerator[rng.next_index(numerator.len())])
            .sum::<f64>()
            / numerator.len() as f64;
        let den: f64 = (0..denominator.len())
            .map(|_| denominator[rng.next_index(denominator.len())])
            .sum::<f64>()
            / denominator.len() as f64;
        if den > 0.0 {
            ratios.push(num / den);
        }
    }
    if ratios.is_empty() {
        return None;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let alpha = (1.0 - confidence) / 2.0;
    let pick = |q: f64| -> f64 {
        let idx = ((ratios.len() as f64 - 1.0) * q).round() as usize;
        ratios[idx.min(ratios.len() - 1)]
    };
    Some(Interval {
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_of_constant_sample_is_degenerate() {
        let ci = bootstrap_mean_ci(&[5.0; 20], 200, 0.95, 1).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert!(ci.contains(5.0));
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn ci_covers_the_true_mean_of_a_simple_sample() {
        // Sample from a known mean-10 distribution.
        let xs: Vec<f64> = (0..100).map(|i| 10.0 + ((i % 7) as f64 - 3.0)).collect();
        let true_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let ci = bootstrap_mean_ci(&xs, 500, 0.95, 2).unwrap();
        assert!(ci.contains(true_mean), "{ci:?} should contain {true_mean}");
        assert!(ci.width() < 2.0, "narrow for a tame sample: {ci:?}");
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert_eq!(
            bootstrap_mean_ci(&xs, 300, 0.9, 7),
            bootstrap_mean_ci(&xs, 300, 0.9, 7)
        );
        assert_ne!(
            bootstrap_mean_ci(&xs, 300, 0.9, 7),
            bootstrap_mean_ci(&xs, 300, 0.9, 8)
        );
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let xs: Vec<f64> = (0..50).map(|i| (i * 13 % 29) as f64).collect();
        let narrow = bootstrap_mean_ci(&xs, 800, 0.5, 3).unwrap();
        let wide = bootstrap_mean_ci(&xs, 800, 0.99, 3).unwrap();
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(bootstrap_mean_ci(&[], 100, 0.95, 1).is_none());
        assert!(bootstrap_ratio_ci(&[], &[1.0], 100, 0.95, 1).is_none());
    }

    #[test]
    fn ratio_ci_brackets_a_known_speedup() {
        let slow = [100.0, 110.0, 95.0, 105.0, 98.0];
        let fast = [24.0, 26.0, 25.0, 25.5, 24.5];
        let ci = bootstrap_ratio_ci(&slow, &fast, 600, 0.95, 4).unwrap();
        assert!(ci.contains(4.07) || (ci.lo < 4.2 && ci.hi > 3.9), "{ci:?}");
        assert!(ci.lo > 3.4 && ci.hi < 4.8, "{ci:?}");
    }
}
