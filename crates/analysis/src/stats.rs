//! Basic statistics and least-squares linear regression.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than 2 points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (interpolated for even lengths); 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// A fitted line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    pub intercept: f64,
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl Line {
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least squares over `(x, y)` points. Returns `None` for
/// fewer than 2 points or a degenerate (vertical) configuration.
pub fn linear_regression(points: &[(f64, f64)]) -> Option<Line> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let my = sy / n;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - my) * (y - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(Line {
        intercept,
        slope,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[7.0]), 0.0);
    }

    #[test]
    fn regression_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let line = linear_regression(&pts).unwrap();
        assert!((line.intercept - 3.0).abs() < 1e-9);
        assert!((line.slope - 2.0).abs() < 1e-9);
        assert!((line.r_squared - 1.0).abs() < 1e-12);
        assert!((line.predict(20.0) - 43.0).abs() < 1e-9);
    }

    #[test]
    fn regression_on_papers_nop_series() {
        // Table 1 NOP: (12, 32855), (66, 76354), (126, 133493) →
        // Table 2 reports intercept 20784, slope 884.
        let line =
            linear_regression(&[(12.0, 32855.0), (66.0, 76354.0), (126.0, 133493.0)]).unwrap();
        assert!(
            (line.intercept - 20784.0).abs() < 30.0,
            "intercept {}",
            line.intercept
        );
        assert!((line.slope - 884.0).abs() < 2.0, "slope {}", line.slope);
    }

    #[test]
    fn regression_needs_two_distinct_x() {
        assert!(linear_regression(&[]).is_none());
        assert!(linear_regression(&[(1.0, 2.0)]).is_none());
        assert!(linear_regression(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn r_squared_below_one_for_noisy_data() {
        let line = linear_regression(&[(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)]).unwrap();
        assert!(line.r_squared < 1.0);
        assert!(line.r_squared > 0.0);
    }
}
