//! Cross-crate integration: a miniature Bronze-Standard run with *real*
//! registration services on the thread-pool backend — the enactor, the
//! synchronization barrier and the registration substrate working
//! together, with results checked against the known ground truth.

use moteur_repro::moteur::prelude::*;
use moteur_repro::registration as reg;
use reg::prelude::*;

type Out = Vec<(String, DataValue)>;
type Tagged = (u32, RigidTransform);

fn mini_workflow() -> Workflow {
    let crest_lines = |inputs: &[Token]| -> Result<Out, String> {
        let reference = inputs[0].value.downcast::<Volume>().ok_or("ref")?;
        let floating = inputs[1].value.downcast::<Volume>().ok_or("float")?;
        let cr = extract_crest_points(reference, 1, auto_threshold(reference, 1.0));
        let cf = extract_crest_points(floating, 1, auto_threshold(floating, 1.0));
        Ok(vec![
            ("cr".into(), DataValue::opaque(cr)),
            ("cf".into(), DataValue::opaque(cf)),
        ])
    };
    let crest_match = |inputs: &[Token]| -> Result<Out, String> {
        let cr = inputs[0].value.downcast::<Vec<Vec3>>().ok_or("cr")?;
        let cf = inputs[1].value.downcast::<Vec<Vec3>>().ok_or("cf")?;
        let r = reg::icp(cr, cf, RigidTransform::IDENTITY, &IcpParams::coarse());
        let tag: Tagged = (inputs[0].index.0[0], r.transform);
        Ok(vec![("transfo".into(), DataValue::opaque(tag))])
    };
    let yasmina = |inputs: &[Token]| -> Result<Out, String> {
        let (pair, init) = *inputs[0].value.downcast::<Tagged>().ok_or("init")?;
        let reference = inputs[1].value.downcast::<Volume>().ok_or("ref")?;
        let floating = inputs[2].value.downcast::<Volume>().ok_or("float")?;
        let t = intensity_register(reference, floating, init, &IntensityParams::default());
        Ok(vec![(
            "transfo".into(),
            DataValue::opaque::<Tagged>((pair, t)),
        )])
    };
    let test = |inputs: &[Token]| -> Result<Out, String> {
        // Means of the two algorithm streams, paired by pair id.
        let mut pairs: std::collections::HashMap<u32, Vec<RigidTransform>> = Default::default();
        for input in inputs.iter().take(2) {
            for v in input.value.as_list().ok_or("stream")? {
                let (pair, t) = *v.downcast::<Tagged>().ok_or("tag")?;
                pairs.entry(pair).or_default().push(t);
            }
        }
        let worst_spread = pairs
            .values()
            .map(|ts| ts[0].rotation_error(ts[1]).to_degrees())
            .fold(0.0f64, f64::max);
        Ok(vec![("spread".into(), DataValue::from(worst_spread))])
    };

    let mut wf = Workflow::new("mini-bronze");
    let rs = wf.add_source("referenceImage");
    let fs = wf.add_source("floatingImage");
    let cl = wf.add_service(
        "crestLines",
        &["r", "f"],
        &["cr", "cf"],
        ServiceBinding::local(crest_lines),
    );
    let cm = wf.add_service(
        "crestMatch",
        &["cr", "cf"],
        &["transfo"],
        ServiceBinding::local(crest_match),
    );
    let ya = wf.add_service(
        "Yasmina",
        &["init", "r", "f"],
        &["transfo"],
        ServiceBinding::local(yasmina),
    );
    let tt = wf.add_service(
        "Test",
        &["a", "b"],
        &["spread"],
        ServiceBinding::local(test),
    );
    wf.set_synchronization(tt, true);
    let sink = wf.add_sink("spread");
    wf.connect(rs, "out", cl, "r").unwrap();
    wf.connect(fs, "out", cl, "f").unwrap();
    wf.connect(cl, "cr", cm, "cr").unwrap();
    wf.connect(cl, "cf", cm, "cf").unwrap();
    wf.connect(cm, "transfo", ya, "init").unwrap();
    wf.connect(rs, "out", ya, "r").unwrap();
    wf.connect(fs, "out", ya, "f").unwrap();
    wf.connect(cm, "transfo", tt, "a").unwrap();
    wf.connect(ya, "transfo", tt, "b").unwrap();
    wf.connect(tt, "spread", sink, "in").unwrap();
    wf
}

fn inputs(n: usize) -> (InputData, Vec<RigidTransform>) {
    let cfg = PhantomConfig {
        nx: 24,
        ny: 24,
        nz: 12,
        noise: 0.5,
        lesions: 3,
    };
    let pairs: Vec<ImagePair> = (0..n).map(|i| image_pair(&cfg, 900 + i as u64)).collect();
    let truths = pairs.iter().map(|p| p.truth).collect();
    let data = InputData::new()
        .set(
            "referenceImage",
            pairs
                .iter()
                .map(|p| DataValue::opaque(p.reference.clone()))
                .collect(),
        )
        .set(
            "floatingImage",
            pairs
                .iter()
                .map(|p| DataValue::opaque(p.floating.clone()))
                .collect(),
        );
    (data, truths)
}

#[test]
fn mini_bronze_runs_with_real_registration_on_threads() {
    let wf = mini_workflow();
    let (data, _) = inputs(2);
    let mut backend = LocalBackend::new();
    let result = run(&wf, &data, EnactorConfig::sp_dp(), &mut backend).expect("run");
    // 2 crestLines + 2 crestMatch + 2 Yasmina + 1 barrier.
    assert_eq!(result.jobs_submitted, 7);
    let spread = result.sink("spread")[0].value.as_num().expect("number");
    assert!(
        spread < 15.0,
        "coarse and intensity registrations should roughly agree, spread {spread} deg"
    );
}

#[test]
fn parallelism_configuration_does_not_change_results() {
    let wf = mini_workflow();
    let (data, _) = inputs(2);
    let mut b1 = LocalBackend::new();
    let r1 = run(&wf, &data, EnactorConfig::sp_dp(), &mut b1).expect("parallel");
    let mut b2 = LocalBackend::new();
    let r2 = run(&wf, &data, EnactorConfig::nop(), &mut b2).expect("sequential");
    let s1 = r1.sink("spread")[0].value.as_num().unwrap();
    let s2 = r2.sink("spread")[0].value.as_num().unwrap();
    assert!(
        (s1 - s2).abs() < 1e-12,
        "results must be configuration-independent: {s1} vs {s2}"
    );
    assert_eq!(r1.jobs_submitted, r2.jobs_submitted);
}
