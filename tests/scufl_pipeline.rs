//! Cross-crate integration: the on-disk languages drive the whole
//! pipeline — serialise the built-in Bronze-Standard workflow and its
//! data set to XML, reload both, and enact on the simulated grid.

use moteur_repro::bench::{bronze_inputs, bronze_workflow, bronze_workflow_xml};
use moteur_repro::gridsim::GridConfig;
use moteur_repro::moteur::{run, EnactorConfig, SimBackend};
use moteur_repro::scufl::{parse_input_data, parse_workflow, write_input_data, write_workflow};

#[test]
fn bronze_workflow_survives_a_full_xml_round_trip_and_enacts() {
    let original = bronze_workflow();
    let xml = write_workflow(&original).expect("bronze serialises");
    let reloaded = parse_workflow(&xml).expect("bronze reloads");
    assert_eq!(reloaded.processors.len(), original.processors.len());
    assert_eq!(reloaded.links.len(), original.links.len());

    let n = 3;
    let data = bronze_inputs(n);
    let data_xml = write_input_data(&[
        ("referenceImage", data.get("referenceImage").unwrap()),
        ("floatingImage", data.get("floatingImage").unwrap()),
        ("methodToTest", data.get("methodToTest").unwrap()),
    ])
    .expect("data set serialises");
    let data_reloaded = parse_input_data(&data_xml).expect("data set reloads");

    let mut backend = SimBackend::new(GridConfig::egee_2006(), 77);
    let result = run(
        &reloaded,
        &data_reloaded,
        EnactorConfig::sp_dp(),
        &mut backend,
    )
    .expect("reloaded workflow enacts");
    assert_eq!(result.jobs_submitted, n * 6 + 1);
    assert_eq!(result.sink("accuracy_translation").len(), 1);
    assert_eq!(result.sink("accuracy_rotation").len(), 1);
}

#[test]
fn reloaded_workflow_produces_identical_timings_to_the_built_in_one() {
    let original = bronze_workflow();
    let reloaded = parse_workflow(&write_workflow(&original).unwrap()).unwrap();
    let inputs = bronze_inputs(2);
    let mut b1 = SimBackend::new(GridConfig::egee_2006(), 5);
    let mut b2 = SimBackend::new(GridConfig::egee_2006(), 5);
    let r1 = run(&original, &inputs, EnactorConfig::sp_dp(), &mut b1).unwrap();
    let r2 = run(&reloaded, &inputs, EnactorConfig::sp_dp(), &mut b2).unwrap();
    assert_eq!(
        r1.makespan, r2.makespan,
        "XML round trip must not change semantics"
    );
    assert_eq!(r1.jobs_submitted, r2.jobs_submitted);
}

#[test]
fn built_in_xml_is_stable() {
    // The document itself is a public artifact; keep it parseable and
    // pointing at the Fig. 9 shape.
    let wf = parse_workflow(&bronze_workflow_xml()).unwrap();
    assert_eq!(wf.name, "bronze-standard");
    assert_eq!(wf.critical_path_services().unwrap(), 5);
}
