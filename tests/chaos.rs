//! Chaos integration: the full Bronze-Standard workflow must complete
//! correctly on a hostile grid — high failure rates, maintenance
//! windows, heavy diurnal background load and mixed queue disciplines —
//! with every optimization enabled at once.

use moteur_repro::bench::{bronze_inputs, bronze_workflow};
use moteur_repro::gridsim::config::{Downtime, QueueDiscipline};
use moteur_repro::gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};
use moteur_repro::moteur::{run, EnactorConfig, SimBackend};

fn hostile_grid() -> GridConfig {
    let mut ces = Vec::new();
    for i in 0..3 {
        let mut ce = CeConfig::new(format!("flaky-{i}"), 40, 0.8 + 0.1 * i as f64);
        ce.background_interarrival = Some(Distribution::Exponential { mean: 40.0 });
        ce.background_duration = Distribution::LogNormal {
            median: 1200.0,
            sigma: 1.2,
        };
        ce.initial_backlog = 30;
        ce.diurnal_amplitude = 0.8;
        ce.downtime = Some(Downtime {
            period: 5_000.0,
            duration: 600.0,
        });
        ce.discipline = if i == 0 {
            QueueDiscipline::UserPriority
        } else {
            QueueDiscipline::Fifo
        };
        ces.push(ce);
    }
    GridConfig {
        ces,
        submission_overhead: Distribution::LogNormal {
            median: 60.0,
            sigma: 0.8,
        },
        match_delay: Distribution::Mixture {
            first: Box::new(Distribution::LogNormal {
                median: 120.0,
                sigma: 0.8,
            }),
            second: Box::new(Distribution::LogNormal {
                median: 1500.0,
                sigma: 0.6,
            }),
            p_second: 0.10,
        },
        notify_delay: Distribution::LogNormal {
            median: 40.0,
            sigma: 0.6,
        },
        failure_probability: 0.15,
        failure_detection: Distribution::LogNormal {
            median: 700.0,
            sigma: 0.5,
        },
        max_retries: 2,
        network: NetworkConfig {
            transfer_latency: 10.0,
            bandwidth: 1.0e6,
            congestion: 0.01,
        },
        typical_job_duration: 600.0,
        info_refresh_period: 300.0,
        compute_jitter: Distribution::Uniform { lo: 0.7, hi: 1.6 },
    }
}

#[test]
fn bronze_standard_survives_a_hostile_grid() {
    let wf = bronze_workflow();
    let n = 8;
    let inputs = bronze_inputs(n);
    let mut backend = SimBackend::new(hostile_grid(), 13);
    let result = run(
        &wf,
        &inputs,
        EnactorConfig::sp_dp_jg().with_batching(2),
        &mut backend,
    )
    .expect("the workflow must complete despite failures and downtime");
    // All results present.
    assert_eq!(result.sink("accuracy_translation").len(), 1);
    assert_eq!(result.sink("accuracy_rotation").len(), 1);
    // With 15% failure probability over dozens of jobs, resubmissions
    // must have occurred somewhere (grid-level at least; possibly
    // enactor-level too).
    let records = backend.sim().records();
    let resubmissions: u32 = records.iter().map(|r| r.attempts.saturating_sub(1)).sum();
    assert!(resubmissions > 0, "a hostile grid should force retries");
    assert!(result.makespan.as_secs_f64() > 0.0);
}

#[test]
fn hostile_runs_are_reproducible_per_seed() {
    let wf = bronze_workflow();
    let inputs = bronze_inputs(4);
    let run_once = |seed: u64| {
        let mut backend = SimBackend::new(hostile_grid(), seed);
        run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend)
            .expect("completes")
            .makespan
    };
    assert_eq!(run_once(7), run_once(7));
    assert_ne!(run_once(7), run_once(8));
}
