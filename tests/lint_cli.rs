//! End-to-end tests of `moteur lint`: exit codes, JSON round-trip,
//! `--predict` agreement with the §3.5 closed forms, and the `run`
//! pre-flight refusing error-level workflows unless `--no-verify`.

use moteur_repro::bench::bronze_workflow;
use moteur_repro::moteur::lint::Severity;
use moteur_repro::moteur::{lint_workflow, predict, report_from_json, report_to_json, TimeMatrix};
use std::path::Path;
use std::process::Command;

fn moteur() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moteur-lint-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write(dir: &Path, name: &str, text: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write fixture");
    path
}

/// A workflow that parses strictly but carries a lint-only error: the
/// coordination constraint contradicts the data-flow order (M041).
const DEADLOCK: &str = r#"<scufl name="deadlock">
  <source name="s"/>
  <processor name="first" compute="10">
    <executable name="first">
      <value value="first"/>
      <input name="in" option="-i"><access type="GFN"/></input>
      <output name="out" option="-o"><access type="GFN"/></output>
    </executable>
  </processor>
  <processor name="second" compute="10">
    <executable name="second">
      <value value="second"/>
      <input name="in" option="-i"><access type="GFN"/></input>
      <output name="out" option="-o"><access type="GFN"/></output>
    </executable>
  </processor>
  <sink name="k"/>
  <link from="s:out" to="first:in"/>
  <link from="first:out" to="second:in"/>
  <link from="second:out" to="k:in"/>
  <coordination from="second" to="first"/>
</scufl>"#;

const INPUTS: &str = r#"<inputdata>
  <input name="s"><item type="file" gfn="gfn://d/0" bytes="1"/></input>
</inputdata>"#;

/// The bundled bronze-standard application must stay clean enough to
/// pass `--deny-warnings`: grouping advice is notes, never warnings.
#[test]
fn bronze_standard_passes_deny_warnings() {
    let report = lint_workflow(&bronze_workflow());
    assert!(!report.is_empty(), "bronze should get grouping advice");
    assert_eq!(report.max_severity(), Some(Severity::Note));
    assert!(!report.fails(true));
}

#[test]
fn lint_cli_exit_codes_follow_severity() {
    let dir = temp_dir("exit");
    let deadlock = write(&dir, "deadlock.xml", DEADLOCK);

    // Errors -> exit 1, and the code is printed.
    let out = moteur().args(["lint"]).arg(&deadlock).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("M041"), "expected M041 in:\n{text}");

    // `moteur example` writes the bronze workflow: notes only -> exit 0
    // even under --deny-warnings.
    let ex = moteur().arg("example").current_dir(&dir).output().unwrap();
    assert!(ex.status.success());
    let bronze = dir.join("bronze-standard.xml");
    let out = moteur()
        .args(["lint", bronze.to_str().unwrap(), "--deny-warnings"])
        .output()
        .unwrap();
    assert!(out.status.success(), "bronze must pass --deny-warnings");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_cli_json_round_trips() {
    let dir = temp_dir("json");
    let deadlock = write(&dir, "deadlock.xml", DEADLOCK);
    let out = moteur()
        .args(["lint", deadlock.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    let report = report_from_json(text.trim()).expect("CLI JSON parses back into a report");
    assert!(report.has_errors());
    assert!(report.diagnostics.iter().any(|d| d.code == "M041"));
    // The re-rendered JSON is identical: a true round-trip.
    assert_eq!(report_to_json(&report), text.trim());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--predict` must agree with the closed-form makespans of eqs. 1-4
/// (the same numbers the bench `theory` binary prints).
#[test]
fn predict_matches_the_closed_forms_on_bronze() {
    let wf = bronze_workflow();
    let n_data = 12;
    let p = predict(&wf, n_data, 0.0).expect("bronze predicts");
    let t = TimeMatrix::from_workflow(&wf, n_data, 0.0).expect("bronze times");
    let tol = 1e-9;
    assert!((p.row("nop").unwrap().makespan - t.sigma_sequential()).abs() < tol);
    assert!((p.row("dp").unwrap().makespan - t.sigma_dp()).abs() < tol);
    assert!((p.row("sp").unwrap().makespan - t.sigma_sp()).abs() < tol);
    assert!((p.row("sp+dp").unwrap().makespan - t.sigma_dsp()).abs() < tol);
    // Job counts match the enactment test-bed: 73 plain, 49 grouped.
    assert_eq!(p.row("nop").unwrap().jobs, 73);
    assert_eq!(p.row("sp+dp+jg").unwrap().jobs, 49);
}

#[test]
fn run_preflight_refuses_lint_errors_unless_no_verify() {
    let dir = temp_dir("preflight");
    let deadlock = write(&dir, "deadlock.xml", DEADLOCK);
    let inputs = write(&dir, "inputs.xml", INPUTS);

    let out = moteur()
        .args(["run", deadlock.to_str().unwrap(), inputs.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "pre-flight must refuse M041");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("M041"), "expected M041 in:\n{err}");
    assert!(
        err.contains("--no-verify"),
        "should mention the escape hatch"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
