//! End-to-end tests of `moteur daemon`: the newline-delimited JSON
//! control protocol driven over stdin/stdout exactly the way a client
//! process would, plus the `--check-protocol` self-test and the unix
//! socket transport.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn moteur() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur"))
}

/// A tiny one-processor workflow, escaped for embedding in a JSON
/// string field.
fn tiny_workflow_json() -> String {
    r#"<scufl name="tiny">
  <source name="s" bytes="64"/>
  <processor name="p" compute="5">
    <executable name="x">
      <access type="URL"><path value="http://h"/></access>
      <value value="x"/>
      <input name="in" option="-i"><access type="GFN"/></input>
      <output name="out" option="-o"><access type="GFN"/></output>
    </executable>
    <outputsize slot="out" bytes="10"/>
  </processor>
  <sink name="k"/>
  <link from="s:out" to="p:in"/>
  <link from="p:out" to="k:in"/>
</scufl>"#
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn tiny_inputs_json(n: usize) -> String {
    let items: String = (0..n)
        .map(|j| format!(r#"<item type="file" gfn="gfn://x/i{j}" bytes="64"/>"#))
        .collect();
    format!(r#"<inputdata><input name="s">{items}</input></inputdata>"#).replace('"', "\\\"")
}

fn submit_line(tenant: &str, n_data: usize) -> String {
    format!(
        r#"{{"schema":"moteur/daemon/v1","op":"submit","tenant":"{tenant}","workflow":"{}","inputs":"{}"}}"#,
        tiny_workflow_json(),
        tiny_inputs_json(n_data)
    )
}

fn req(op: &str) -> String {
    format!(r#"{{"schema":"moteur/daemon/v1","op":"{op}"}}"#)
}

/// Feed a whole session to `moteur daemon` over stdin and collect the
/// response lines.
fn run_session(lines: &[String]) -> Vec<String> {
    let mut child = moteur()
        .arg("daemon")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stdin = child.stdin.take().expect("stdin piped");
    for line in lines {
        writeln!(stdin, "{line}").expect("write request");
    }
    drop(stdin); // EOF ends the session even without a shutdown op
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "daemon failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf-8 responses")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn submit_status_cancel_shutdown_round_trip() {
    let responses = run_session(&[
        submit_line("alice", 2),
        req("drain"),
        r#"{"schema":"moteur/daemon/v1","op":"status","id":1}"#.to_string(),
        submit_line("bob", 8),
        r#"{"schema":"moteur/daemon/v1","op":"cancel","id":2}"#.to_string(),
        req("list"),
        req("metrics"),
        req("shutdown"),
    ]);
    assert_eq!(responses.len(), 8, "{responses:?}");
    assert!(responses[0].contains(r#""op":"submit","ok":true,"id":1"#));
    assert!(responses[1].contains(r#""op":"drain","ok":true,"completed":1"#));
    assert!(responses[2].contains(r#""state":"succeeded""#));
    assert!(responses[3].contains(r#""id":2"#));
    assert!(responses[4].contains(r#""op":"cancel","ok":true"#));
    assert!(responses[5].contains(r#""state":"cancelled""#));
    assert!(responses[6].contains(r#""schema":"moteur/daemon/v1","op":"metrics","ok":true"#));
    assert!(responses[6].contains(r#""succeeded":1"#));
    assert!(responses[6].contains(r#""cancelled":1"#));
    assert!(
        responses[6].contains("moteur_daemon_instances"),
        "openmetrics exposition inlined"
    );
    assert!(responses[7].contains(r#""op":"shutdown","ok":true"#));
}

#[test]
fn status_json_is_byte_stable_across_sessions() {
    let session = vec![
        submit_line("a", 2),
        req("drain"),
        r#"{"schema":"moteur/daemon/v1","op":"status","id":1}"#.to_string(),
    ];
    let first = run_session(&session);
    let second = run_session(&session);
    assert_eq!(first, second, "responses drifted between daemon runs");
    let status = &first[2];
    assert!(
        status.starts_with(
            r#"{"schema":"moteur/daemon/v1","op":"status","ok":true,"instance":{"id":1,"tenant":"a","workflow":"tiny","state":"succeeded","submitted_at":0,"first_job_at":0,"#
        ),
        "status field order is part of the protocol: {status}"
    );
}

#[test]
fn a_flooding_tenant_cannot_starve_anothers_admission() {
    let mut lines: Vec<String> = (0..50).map(|_| submit_line("flood", 2)).collect();
    lines.push(submit_line("vip", 2));
    lines.push(r#"{"schema":"moteur/daemon/v1","op":"status","id":51}"#.to_string());
    lines.push(req("drain"));
    lines.push(req("metrics"));
    let responses = run_session(&lines);
    // The vip submission is admitted immediately (its tenant has free
    // workflow slots) so its first job fires at submission time even
    // with 50 flood workflows already in the daemon.
    let vip = &responses[51];
    assert!(vip.contains(r#""tenant":"vip""#), "{vip}");
    let submitted = field_num(vip, "submitted_at");
    let first_job = field_num(vip, "first_job_at");
    assert_eq!(submitted, first_job, "vip waited behind the flood: {vip}");
    assert!(
        responses[53].contains(r#""succeeded":51"#),
        "{}",
        responses[53]
    );
}

/// Pull a numeric field out of a response line without a JSON parser.
fn field_num(line: &str, key: &str) -> f64 {
    let tagged = format!("\"{key}\":");
    let rest = &line[line.find(&tagged).expect(key) + tagged.len()..];
    let end = rest.find([',', '}']).expect("number terminated by , or }");
    rest[..end].parse().expect("numeric field")
}

#[test]
fn malformed_and_unknown_requests_get_error_responses() {
    let responses = run_session(&[
        "not json at all".to_string(),
        r#"{"schema":"moteur/daemon/v2","op":"list"}"#.to_string(),
        r#"{"schema":"moteur/daemon/v1","op":"levitate"}"#.to_string(),
        r#"{"schema":"moteur/daemon/v1","op":"status","id":99}"#.to_string(),
    ]);
    assert_eq!(responses.len(), 4);
    for r in &responses[..3] {
        assert!(r.contains(r#""ok":false"#), "{r}");
    }
    assert!(responses[3].contains(r#""ok":false"#), "{}", responses[3]);
    assert!(
        responses[3].contains("unknown instance"),
        "{}",
        responses[3]
    );
}

#[test]
fn check_protocol_self_test_passes() {
    let out = moteur()
        .args(["daemon", "--check-protocol"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("moteur/daemon/v1 protocol ok"), "{stdout}");
    for op in [
        "submit", "status", "cancel", "list", "metrics", "drain", "shutdown",
    ] {
        assert!(stdout.contains(op), "missing {op} in: {stdout}");
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_serves_a_session() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("moteur-daemon-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let sock = dir.join("moteur.sock");
    let mut child = moteur()
        .args(["daemon", "--socket", sock.to_str().expect("utf-8 path")])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    // Wait for the listener to come up.
    let mut stream = None;
    for _ in 0..200 {
        match UnixStream::connect(&sock) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let stream = stream.expect("daemon socket came up");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    writeln!(writer, "{}", submit_line("alice", 2)).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""op":"submit","ok":true,"id":1"#), "{line}");
    line.clear();
    writeln!(writer, "{}", req("drain")).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""completed":1"#), "{line}");
    line.clear();
    writeln!(writer, "{}", req("shutdown")).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""op":"shutdown","ok":true"#), "{line}");

    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success());
    assert!(!sock.exists(), "socket file cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}
