//! End-to-end tests of the `moteur` CLI binary: the full user journey
//! from `moteur example` through `run`, `validate`, `group` and `dot`.

use std::process::Command;

fn moteur() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur"))
}

fn in_temp_dir() -> tempdir::TempDir {
    tempdir::TempDir::new()
}

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::{Path, PathBuf};

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new() -> TempDir {
            let base = std::env::temp_dir().join(format!(
                "moteur-cli-test-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&base).expect("create temp dir");
            TempDir(base)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[test]
fn example_then_validate_then_run_round_trip() {
    let dir = in_temp_dir();
    let out = moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.path().join("bronze-standard.xml").exists());
    assert!(dir.path().join("inputs-12.xml").exists());

    let out = moteur()
        .args(["validate", "bronze-standard.xml"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OK"), "{text}");
    assert!(text.contains("critical path 5"), "{text}");

    let out = moteur()
        .args([
            "run",
            "bronze-standard.xml",
            "inputs-12.xml",
            "--config",
            "sp+dp+jg",
            "--seed",
            "7",
            "--report",
            "--provenance",
            "prov.xml",
        ])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("completed in"), "{text}");
    assert!(
        text.contains("49 jobs submitted"),
        "grouped: 4×12 + 1: {text}"
    );
    assert!(
        text.contains("crestLines+crestMatch"),
        "report shows grouped services: {text}"
    );
    assert!(
        text.contains("sink accuracy_rotation: 1 result(s)"),
        "{text}"
    );
    // Provenance export parses and names the barrier.
    let prov = std::fs::read_to_string(dir.path().join("prov.xml")).expect("provenance file");
    assert!(prov.contains("<provenance>"), "{prov}");
    assert!(prov.contains("MultiTransfoTest"), "{prov}");
}

#[test]
fn dot_export_is_valid_graphviz_shape() {
    let dir = in_temp_dir();
    assert!(moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .unwrap()
        .status
        .success());
    let out = moteur()
        .args(["dot", "bronze-standard.xml"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"), "{text}");
    assert!(
        text.contains("doubleoctagon"),
        "MultiTransfoTest is a barrier: {text}"
    );
    assert!(text.trim_end().ends_with('}'), "{text}");
}

#[test]
fn group_reports_the_merged_processors() {
    let dir = in_temp_dir();
    assert!(moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .unwrap()
        .status
        .success());
    let out = moteur()
        .args(["group", "bronze-standard.xml"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("crestLines+crestMatch"), "{text}");
    assert!(text.contains("PFMatchICP+PFRegister"), "{text}");
}

#[test]
fn bad_usage_and_bad_files_fail_cleanly() {
    let out = moteur().output().expect("spawn");
    assert!(!out.status.success());
    let out = moteur()
        .args(["validate", "/nonexistent.xml"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("moteur:"));
    let dir = in_temp_dir();
    std::fs::write(dir.path().join("bad.xml"), "<scufl><mystery/></scufl>").unwrap();
    let out = moteur()
        .args(["validate", "bad.xml"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let out = moteur()
        .args(["run", "bad.xml", "missing.xml"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn unknown_config_is_rejected() {
    let dir = in_temp_dir();
    assert!(moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .unwrap()
        .status
        .success());
    let out = moteur()
        .args([
            "run",
            "bronze-standard.xml",
            "inputs-12.xml",
            "--config",
            "warp9",
        ])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown config"));
}

#[test]
fn observability_flags_produce_trace_metrics_and_events() {
    let dir = in_temp_dir();
    assert!(moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .unwrap()
        .status
        .success());
    let out = moteur()
        .args([
            "run",
            "bronze-standard.xml",
            "inputs-12.xml",
            "--config",
            "sp+dp",
            "--seed",
            "7",
            "--events",
            "events.jsonl",
            "--chrome-trace",
            "trace.json",
            "--metrics",
            "metrics.json",
            "--critical-path",
        ])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("73 jobs submitted"), "6×12 + 1 sync: {text}");
    assert!(text.contains("critical path"), "{text}");
    assert!(text.contains("per-service contribution"), "{text}");

    // Chrome trace is a complete-span envelope.
    let trace = std::fs::read_to_string(dir.path().join("trace.json")).expect("trace file");
    assert!(
        trace.starts_with("{\"traceEvents\":["),
        "{}",
        &trace[..80.min(trace.len())]
    );
    assert!(trace.contains("\"ph\":\"X\""), "complete spans present");
    assert!(trace.contains("\"ph\":\"C\""), "counter tracks present");
    assert!(trace.contains("crestLines"), "service lanes are named");

    // Metrics snapshot reconciles with the run banner.
    let metrics = std::fs::read_to_string(dir.path().join("metrics.json")).expect("metrics file");
    assert!(metrics.contains("\"job_submitted\":73"), "{metrics}");
    assert!(metrics.contains("grid_overhead_secs"), "{metrics}");

    // Every JSONL line is a typed, timestamped object; every submission
    // reaches a terminal event.
    let events = std::fs::read_to_string(dir.path().join("events.jsonl")).expect("events file");
    let mut submitted = 0;
    let mut terminal = 0;
    for line in events.lines() {
        assert!(line.starts_with("{\"type\":\""), "{line}");
        assert!(line.contains("\"t\":"), "{line}");
        if line.starts_with("{\"type\":\"job_submitted\"") {
            submitted += 1;
        }
        if line.starts_with("{\"type\":\"job_completed\"")
            || line.starts_with("{\"type\":\"job_failed\"")
        {
            terminal += 1;
        }
    }
    assert_eq!(submitted, 73);
    assert_eq!(terminal, 73);
}

#[test]
fn openmetrics_and_spans_flags_expose_the_perf_observatory() {
    let dir = in_temp_dir();
    assert!(moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .unwrap()
        .status
        .success());
    let out = moteur()
        .args([
            "run",
            "bronze-standard.xml",
            "inputs-12.xml",
            "--config",
            "sp+dp",
            "--seed",
            "7",
            "--grid",
            "ideal",
            "--openmetrics",
            "metrics.om",
            "--spans",
            "spans.jsonl",
        ])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The exposition is spec-shaped: typed families, labelled samples,
    // histogram buckets ending at +Inf, single EOF terminator.
    let om = std::fs::read_to_string(dir.path().join("metrics.om")).expect("openmetrics file");
    assert!(om.contains("# TYPE moteur_events_total counter"), "{om}");
    assert!(
        om.contains("moteur_events_total{kind=\"job_submitted\"} 73"),
        "{om}"
    );
    assert!(
        om.contains("moteur_service_inflight{service=\"crestLines\"}"),
        "{om}"
    );
    assert!(
        om.contains("moteur_grid_overhead_seconds_bucket{le=\"+Inf\"} 73"),
        "{om}"
    );
    assert!(
        om.contains("moteur_phase_duration_seconds_sum{phase=\"execution\"}"),
        "{om}"
    );
    assert!(om.contains("moteur_makespan_seconds 465"), "{om}");
    assert!(om.ends_with("# EOF\n"), "terminated exposition");
    assert_eq!(om.matches("# EOF").count(), 1);

    // The span export is one JSON object per span, hierarchically
    // linked: exactly one root, every other span names a parent.
    let spans = std::fs::read_to_string(dir.path().join("spans.jsonl")).expect("spans file");
    let mut roots = 0;
    let mut items = 0;
    for line in spans.lines() {
        assert!(line.starts_with("{\"id\":"), "{line}");
        if !line.contains("\"parent\":") {
            roots += 1;
        }
        if line.contains("\"kind\":\"item\"") {
            items += 1;
        }
    }
    assert_eq!(roots, 1, "single workflow root");
    assert_eq!(items, 73, "one item span per job");
}

#[test]
fn gridsim_binary_runs_a_synthetic_load_with_openmetrics() {
    let dir = in_temp_dir();
    let out = Command::new(env!("CARGO_BIN_EXE_moteur-gridsim"))
        .args([
            "--jobs",
            "8",
            "--compute",
            "60",
            "--seed",
            "11",
            "--openmetrics",
            "grid.om",
            "--spans",
            "grid-spans.jsonl",
        ])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("delivered 8/8 jobs"), "{text}");
    assert!(text.contains("overhead: mean"), "{text}");

    let om = std::fs::read_to_string(dir.path().join("grid.om")).expect("openmetrics file");
    assert!(
        om.contains("moteur_events_total{kind=\"grid_delivered\"} 8"),
        "{om}"
    );
    assert!(om.contains("# TYPE moteur_ce_queue_depth gauge"), "{om}");
    assert!(om.contains("moteur_grid_overhead_seconds_count 8"), "{om}");
    assert!(om.ends_with("# EOF\n"), "{om}");

    let spans = std::fs::read_to_string(dir.path().join("grid-spans.jsonl")).expect("spans file");
    let items = spans
        .lines()
        .filter(|l| l.contains("\"kind\":\"item\""))
        .count();
    assert_eq!(items, 8, "one item span per synthetic job");
    // EGEE overheads are stochastic but never zero: each item carries
    // a queuing phase.
    assert!(spans.contains("\"kind\":\"queuing\""), "{spans}");
}
