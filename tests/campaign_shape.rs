//! Cross-crate integration: the Table 1 campaign at reduced scale must
//! reproduce the paper's qualitative claims — configuration ordering,
//! job-count reductions from grouping, and the §5 metric directions.

use moteur_repro::bench::{run_campaign, run_point};
use moteur_repro::moteur::EnactorConfig;

#[test]
fn configuration_ordering_matches_the_paper() {
    // Average two seeds to tame max-statistics noise at small n_D.
    let n = 10;
    let avg = |cfg: EnactorConfig| -> f64 {
        [11u64, 23, 47, 91]
            .iter()
            .map(|&s| run_point(cfg, n, s).makespan_secs)
            .sum::<f64>()
            / 4.0
    };
    let nop = avg(EnactorConfig::nop());
    let jg = avg(EnactorConfig::jg());
    let sp = avg(EnactorConfig::sp());
    let dp = avg(EnactorConfig::dp());
    let sp_dp = avg(EnactorConfig::sp_dp());
    let all = avg(EnactorConfig::sp_dp_jg());
    // Table 1 row ordering at every size: NOP slowest, then JG, SP, DP,
    // SP+DP, SP+DP+JG fastest.
    assert!(jg < nop, "JG {jg} vs NOP {nop}");
    assert!(sp < jg, "SP {sp} vs JG {jg}");
    assert!(dp < sp, "DP {dp} vs SP {sp}");
    // DP and SP+DP race closely at small n_D (max statistics over few
    // draws); allow a small tolerance on that single comparison.
    assert!(sp_dp < dp * 1.1, "SP+DP {sp_dp} vs DP {dp}");
    assert!(all <= sp_dp * 1.05, "SP+DP+JG {all} vs SP+DP {sp_dp}");
    // Abstract: the full optimization gives a many-fold speed-up.
    assert!(nop / all > 3.0, "total speed-up {}", nop / all);
}

#[test]
fn service_parallelism_helps_beyond_data_parallelism_on_the_grid() {
    // §5.2's headline: S_SDP = 1 in theory, ≈2 in practice, because
    // grid times are variable. Two seeds averaged.
    let n = 12;
    let dp = (run_point(EnactorConfig::dp(), n, 5).makespan_secs
        + run_point(EnactorConfig::dp(), n, 17).makespan_secs)
        / 2.0;
    let dsp = (run_point(EnactorConfig::sp_dp(), n, 5).makespan_secs
        + run_point(EnactorConfig::sp_dp(), n, 17).makespan_secs)
        / 2.0;
    assert!(
        dsp < dp * 0.85,
        "SP must add a real speed-up on a variable grid: DP {dp} vs DP+SP {dsp}"
    );
}

#[test]
fn grouping_cuts_jobs_from_6_to_4_per_pair() {
    let plain = run_point(EnactorConfig::sp_dp(), 5, 1);
    let grouped = run_point(EnactorConfig::sp_dp_jg(), 5, 1);
    assert_eq!(plain.jobs_submitted, 5 * 6 + 1);
    assert_eq!(grouped.jobs_submitted, 5 * 4 + 1);
}

#[test]
fn campaign_series_are_increasing_in_data_size() {
    let results = run_campaign(&[4, 12], 3, 2);
    for (series, _) in &results {
        // More data never runs faster under NOP/JG/SP (strictly
        // sequential components dominate).
        if ["NOP", "JG", "SP"].contains(&series.label.as_str()) {
            assert!(
                series.points[1].1 > series.points[0].1,
                "{}: {:?}",
                series.label,
                series.points
            );
        }
    }
}

#[test]
fn dp_collapses_the_slope() {
    let results = run_campaign(&[6, 18], 9, 2);
    let slope = |label: &str| -> f64 {
        let (s, _) = results
            .iter()
            .find(|(s, _)| s.label == label)
            .expect("label exists");
        (s.points[1].1 - s.points[0].1) / (s.points[1].0 - s.points[0].0)
    };
    // §5.2: data parallelism mainly improves the slope (data
    // scalability); the ratio should be large.
    assert!(
        slope("NOP") > 3.0 * slope("DP").max(1.0),
        "NOP slope {} vs DP slope {}",
        slope("NOP"),
        slope("DP")
    );
}
