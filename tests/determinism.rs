//! Reproducibility contract of `--seed`: two enactments with the same
//! seed are byte-for-byte identical in their event logs, across both
//! the `moteur` enactor and the `moteur-gridsim` standalone simulator —
//! and the data manager's warm restart holds across separate processes.

use std::path::Path;
use std::process::Command;

fn moteur() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur"))
}

fn gridsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur-gridsim"))
}

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::{Path, PathBuf};

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new() -> TempDir {
            let base = std::env::temp_dir().join(format!(
                "moteur-determinism-test-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&base).expect("create temp dir");
            TempDir(base)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn write_example(dir: &Path) {
    let out = moteur()
        .arg("example")
        .current_dir(dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn run_with_events(dir: &Path, seed: &str, events: &str) {
    let out = moteur()
        .args([
            "run",
            "bronze-standard.xml",
            "inputs-12.xml",
            "--config",
            "sp+dp",
            "--seed",
            seed,
            "--events",
            events,
        ])
        .current_dir(dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn same_seed_enactments_write_identical_event_logs() {
    let dir = tempdir::TempDir::new();
    write_example(dir.path());
    run_with_events(dir.path(), "42", "a.jsonl");
    run_with_events(dir.path(), "42", "b.jsonl");
    run_with_events(dir.path(), "43", "c.jsonl");
    let a = std::fs::read(dir.path().join("a.jsonl")).expect("a.jsonl");
    let b = std::fs::read(dir.path().join("b.jsonl")).expect("b.jsonl");
    let c = std::fs::read(dir.path().join("c.jsonl")).expect("c.jsonl");
    assert!(!a.is_empty(), "event log must not be empty");
    assert_eq!(a, b, "same seed must be byte-identical");
    // The default EGEE grid is stochastic, so a different seed must
    // actually change the trace — otherwise the seed is not wired in.
    assert_ne!(a, c, "different seeds must diverge on the EGEE grid");
}

#[test]
fn same_seed_gridsim_runs_write_identical_event_logs() {
    let dir = tempdir::TempDir::new();
    let run = |seed: &str, events: &str| {
        let out = gridsim()
            .args(["--jobs", "8", "--seed", seed, "--events", events])
            .current_dir(dir.path())
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run("9", "a.jsonl");
    run("9", "b.jsonl");
    let a = std::fs::read(dir.path().join("a.jsonl")).expect("a.jsonl");
    let b = std::fs::read(dir.path().join("b.jsonl")).expect("b.jsonl");
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

fn run_with_timeline(dir: &Path, seed: &str, timeline: &str) {
    let out = moteur()
        .args([
            "run",
            "bronze-standard.xml",
            "inputs-12.xml",
            "--config",
            "sp+dp",
            "--seed",
            seed,
            "--timeline",
            timeline,
        ])
        .current_dir(dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The timeline export is virtual-time-only, so two enactments with
/// the same workflow and seed must serialise to byte-identical
/// `moteur/timeline/v1` documents even across separate processes.
#[test]
fn same_seed_enactments_write_identical_timelines() {
    let dir = tempdir::TempDir::new();
    write_example(dir.path());
    run_with_timeline(dir.path(), "42", "a.json");
    run_with_timeline(dir.path(), "42", "b.json");
    run_with_timeline(dir.path(), "43", "c.json");
    let a = std::fs::read(dir.path().join("a.json")).expect("a.json");
    let b = std::fs::read(dir.path().join("b.json")).expect("b.json");
    let c = std::fs::read(dir.path().join("c.json")).expect("c.json");
    assert!(!a.is_empty(), "timeline must not be empty");
    assert!(
        std::str::from_utf8(&a)
            .expect("utf-8")
            .contains("moteur/timeline/v1"),
        "timeline must carry its schema tag"
    );
    assert_eq!(a, b, "same seed must be byte-identical");
    assert_ne!(a, c, "different seeds must diverge on the EGEE grid");
}

/// Same contract for the standalone simulator's `--timeline`.
#[test]
fn same_seed_gridsim_runs_write_identical_timelines() {
    let dir = tempdir::TempDir::new();
    let run = |seed: &str, timeline: &str| {
        let out = gridsim()
            .args(["--jobs", "8", "--seed", seed, "--timeline", timeline])
            .current_dir(dir.path())
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run("9", "a.json");
    run("9", "b.json");
    let a = std::fs::read(dir.path().join("a.json")).expect("a.json");
    let b = std::fs::read(dir.path().join("b.json")).expect("b.json");
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// The data manager's warm restart across *processes*: a second
/// `moteur run --cache-dir` in a fresh process loads the persisted
/// store and elides every deterministic grid job (only the
/// uncacheable synchronization barrier is resubmitted).
#[test]
fn warm_restart_across_processes_elides_grid_jobs() {
    let dir = tempdir::TempDir::new();
    write_example(dir.path());
    let run_cached = || {
        let out = moteur()
            .args([
                "run",
                "bronze-standard.xml",
                "inputs-12.xml",
                "--config",
                "sp+dp",
                "--grid",
                "ideal",
                "--seed",
                "7",
                "--cache-dir",
                "cache",
            ])
            .current_dir(dir.path())
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let cold = run_cached();
    assert!(cold.contains("73 jobs submitted"), "cold: {cold}");
    let warm = run_cached();
    assert!(
        warm.contains("1 jobs submitted"),
        "warm should keep only the barrier: {warm}"
    );
    assert!(warm.contains("72 hits"), "warm: {warm}");

    // The maintenance subcommand reads the same on-disk store.
    let out = moteur()
        .args(["cache", "stats", "cache"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stats = String::from_utf8_lossy(&out.stdout);
    assert!(stats.contains("72 invocations"), "{stats}");

    let out = moteur()
        .args(["cache", "clear", "cache"])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let recold = run_cached();
    assert!(
        recold.contains("73 jobs submitted"),
        "cleared cache re-runs everything: {recold}"
    );
}
