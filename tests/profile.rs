//! Determinism contract of `--profile`: the canonical `moteur/prof/v1`
//! document contains only call and allocation counters — never wall
//! time — so two processes given identical inputs must write
//! byte-identical files, and the JSON codec must round-trip them
//! exactly.

use moteur_repro::moteur::{prof_from_json, prof_to_json};
use std::path::{Path, PathBuf};
use std::process::Command;

fn moteur() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur"))
}

fn gridsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moteur-gridsim"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let base = std::env::temp_dir().join(format!(
            "moteur-profile-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&base).expect("create temp dir");
        TempDir(base)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn moteur_run_profiles_are_byte_identical_across_processes() {
    let dir = TempDir::new("run");
    assert!(moteur()
        .arg("example")
        .current_dir(dir.path())
        .output()
        .unwrap()
        .status
        .success());
    for profile in ["p1.json", "p2.json"] {
        let out = moteur()
            .args([
                "run",
                "bronze-standard.xml",
                "inputs-12.xml",
                "--config",
                "sp+dp",
                "--seed",
                "7",
                "--profile",
                profile,
                "--profile-collapsed",
                "stacks.folded",
            ])
            .current_dir(dir.path())
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The hot-spot table lands on stderr so stdout stays scriptable.
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("prof: subsystem hot spots"), "{err}");
        assert!(err.contains("enactor_loop"), "{err}");
    }
    let p1 = std::fs::read(dir.path().join("p1.json")).expect("first profile");
    let p2 = std::fs::read(dir.path().join("p2.json")).expect("second profile");
    assert_eq!(p1, p2, "profile JSON differs between identical processes");

    // The canonical document round-trips through the codec exactly.
    let text = String::from_utf8(p1).expect("utf8 profile");
    let report = prof_from_json(&text).expect("parse canonical profile");
    assert_eq!(prof_to_json(&report), text);
    assert!(text.contains("\"schema\":\"moteur/prof/v1\""));
    assert!(text.contains("\"subsystem\":\"enactor_loop\""));

    // The collapsed export is flamegraph-shaped: `stack weight` lines
    // rooted at `moteur`.
    let folded =
        std::fs::read_to_string(dir.path().join("stacks.folded")).expect("collapsed stacks");
    for line in folded.lines() {
        assert!(line.starts_with("moteur;"), "{line}");
        let (_, weight) = line.rsplit_once(' ').expect("weighted line");
        weight.parse::<u64>().expect("integer weight");
    }
    assert!(folded.contains("moteur;enactor_loop;fire"), "{folded}");
}

#[test]
fn gridsim_profiles_are_byte_identical_across_processes() {
    let dir = TempDir::new("gridsim");
    for profile in ["g1.json", "g2.json"] {
        let out = gridsim()
            .args(["--jobs", "25", "--seed", "11", "--profile", profile])
            .current_dir(dir.path())
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let g1 = std::fs::read(dir.path().join("g1.json")).expect("first profile");
    let g2 = std::fs::read(dir.path().join("g2.json")).expect("second profile");
    assert_eq!(g1, g2, "profile JSON differs between identical processes");

    let text = String::from_utf8(g1).expect("utf8 profile");
    let report = prof_from_json(&text).expect("parse canonical profile");
    assert_eq!(prof_to_json(&report), text);
    // The uninstrumented binary never installs the counting allocator,
    // so the allocation counters are deterministically zero.
    assert!(!text.contains("\"allocs\":1"), "{text}");
    assert!(text.contains("\"subsystem\":\"event_queue\""));
}

#[test]
fn openmetrics_exposition_carries_prof_counters_when_profiling() {
    let dir = TempDir::new("openmetrics");
    let out = gridsim()
        .args([
            "--jobs",
            "8",
            "--seed",
            "3",
            "--profile",
            "p.json",
            "--openmetrics",
            "grid.om",
        ])
        .current_dir(dir.path())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let om = std::fs::read_to_string(dir.path().join("grid.om")).expect("openmetrics file");
    // OpenMetrics names the family without the `_total` suffix.
    assert!(om.contains("# TYPE moteur_prof_calls counter"), "{om}");
    assert!(
        om.contains("moteur_prof_calls_total{subsystem=\"event_queue\"}"),
        "{om}"
    );
    assert!(om.ends_with("# EOF\n"), "single terminator preserved");
    assert_eq!(om.matches("# EOF").count(), 1);
}
