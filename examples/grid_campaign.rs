//! Run the Bronze-Standard workflow on the *simulated EGEE grid* under
//! all six optimization configurations — a reduced-size version of the
//! paper's Table 1 experiment that finishes in seconds.
//!
//! Run with: `cargo run --release --example grid_campaign [n_pairs]`

use moteur_repro::analysis::{compare, fmt_secs, Series, Table};
use moteur_repro::moteur::EnactorConfig;

fn main() {
    let n_pairs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    println!("Bronze-Standard campaign on the simulated EGEE grid, {n_pairs} image pairs\n");

    let mut table = Table::new(&[
        "Configuration",
        "time (s)",
        "time (h)",
        "jobs",
        "speed-up vs NOP",
    ]);
    let mut nop_time = None;
    let mut series = Vec::new();
    for config in EnactorConfig::table1_configurations() {
        let point = moteur_bench::run_point(config, n_pairs, 2006);
        if config.label() == "NOP" {
            nop_time = Some(point.makespan_secs);
        }
        let speedup = nop_time.map_or(1.0, |n| n / point.makespan_secs);
        table.add_row(vec![
            config.label().to_string(),
            fmt_secs(point.makespan_secs),
            format!("{:.2}", point.makespan_secs / 3600.0),
            point.jobs_submitted.to_string(),
            format!("{speedup:.2}x"),
        ]);
        series.push(Series::new(
            config.label(),
            vec![(n_pairs as f64, point.makespan_secs)],
        ));
    }
    println!("{}", table.render());

    let nop = series.iter().find(|s| s.label == "NOP").expect("NOP ran");
    let best = series
        .iter()
        .find(|s| s.label == "SP+DP+JG")
        .expect("SP+DP+JG ran");
    let c = compare(nop, best);
    println!(
        "full optimization speed-up at {n_pairs} pairs: {:.1}x (the paper reports ~9x at 126)",
        c.speedups[0].1
    );
    println!("\nFor the full Table 1/2 reproduction run:");
    println!("  cargo run --release -p moteur-bench --bin table1");
    println!("  cargo run --release -p moteur-bench --bin table2");
}
