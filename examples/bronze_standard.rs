//! The real thing: the Bronze-Standard application of paper §4.2 run
//! end to end, with the Fig. 9 workflow enacted by MOTEUR-RS on the
//! thread-pool backend and every service doing *actual* registration
//! work on synthetic brain images:
//!
//! - `crestLines` extracts feature points from both images,
//! - `crestMatch` computes the initial transform (coarse ICP),
//! - `PFMatchICP`/`PFRegister` refine it (full + tight ICP),
//! - `Yasmina` optimises image intensity similarity,
//! - `Baladin` does block matching,
//! - `MultiTransfoTest` (a synchronization processor) computes the
//!   bronze-standard accuracy of each algorithm.
//!
//! Because the phantoms have *known* ground-truth motions, the report
//! also shows each algorithm's true error — something the real
//! clinical study could never know.
//!
//! Run with: `cargo run --release --example bronze_standard [n_pairs]`

use moteur_repro::moteur::prelude::*;
use moteur_repro::registration as reg;
use reg::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Tokens carry opaque payloads between local services.
type Out = Vec<(String, DataValue)>;

fn volume_of(t: &Token) -> Result<&Volume, String> {
    t.value
        .downcast::<Volume>()
        .ok_or_else(|| "expected a Volume".into())
}

fn cloud_of(t: &Token) -> Result<&Vec<Vec3>, String> {
    t.value
        .downcast::<Vec<Vec3>>()
        .ok_or_else(|| "expected a point cloud".into())
}

/// Transform tagged with its image-pair index (read from provenance).
type Tagged = (u32, RigidTransform);

fn transfo_of(t: &Token) -> Result<Tagged, String> {
    t.value
        .downcast::<Tagged>()
        .copied()
        .ok_or_else(|| "expected a transform".into())
}

fn pair_index(t: &Token) -> u32 {
    t.index.0.first().copied().unwrap_or(0)
}

fn main() {
    let n_pairs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let phantom_cfg = PhantomConfig {
        nx: 32,
        ny: 32,
        nz: 16,
        noise: 1.0,
        lesions: 3,
    };

    // ---- generate the "clinical database": image pairs with known motions
    println!(
        "generating {n_pairs} synthetic image pairs ({}x{}x{})...",
        phantom_cfg.nx, phantom_cfg.ny, phantom_cfg.nz
    );
    let pairs: Vec<ImagePair> = (0..n_pairs)
        .map(|i| image_pair(&phantom_cfg, 7000 + i as u64))
        .collect();
    let truths: Vec<RigidTransform> = pairs.iter().map(|p| p.truth).collect();

    // ---- the Fig. 9 workflow with in-process service bindings
    let crest_lines = |inputs: &[Token]| -> Result<Out, String> {
        let reference = volume_of(&inputs[0])?;
        let floating = volume_of(&inputs[1])?;
        let scale = 1; // the descriptor's fixed `-s 2` maps to lattice scale here
        let cr = extract_crest_points(reference, scale, auto_threshold(reference, 1.0));
        let cf = extract_crest_points(floating, scale, auto_threshold(floating, 1.0));
        Ok(vec![
            ("crest_reference".into(), DataValue::opaque(cr)),
            ("crest_floating".into(), DataValue::opaque(cf)),
        ])
    };
    let crest_match = |inputs: &[Token]| -> Result<Out, String> {
        let cr = cloud_of(&inputs[0])?;
        let cf = cloud_of(&inputs[1])?;
        let r = reg::icp(cr, cf, RigidTransform::IDENTITY, &IcpParams::coarse());
        let tagged: Tagged = (pair_index(&inputs[0]), r.transform);
        Ok(vec![("transfo".into(), DataValue::opaque(tagged))])
    };
    let pf_match = |inputs: &[Token]| -> Result<Out, String> {
        let (pair, init) = transfo_of(&inputs[0])?;
        let cr = cloud_of(&inputs[1])?;
        let cf = cloud_of(&inputs[2])?;
        let r = reg::icp(cr, cf, init, &IcpParams::matching());
        Ok(vec![(
            "raw_transfo".into(),
            DataValue::opaque((pair, r.transform, Arc::new((cr.clone(), cf.clone())))),
        )])
    };
    let pf_register = |inputs: &[Token]| -> Result<Out, String> {
        let (pair, init, clouds) = inputs[0]
            .value
            .downcast::<(u32, RigidTransform, Arc<(Vec<Vec3>, Vec<Vec3>)>)>()
            .cloned()
            .ok_or("expected PFMatchICP output")?;
        let r = reg::icp(&clouds.0, &clouds.1, init, &IcpParams::refinement());
        let tagged: Tagged = (pair, r.transform);
        Ok(vec![("transfo".into(), DataValue::opaque(tagged))])
    };
    let yasmina = |inputs: &[Token]| -> Result<Out, String> {
        let (pair, init) = transfo_of(&inputs[0])?;
        let reference = volume_of(&inputs[1])?;
        let floating = volume_of(&inputs[2])?;
        let t = intensity_register(reference, floating, init, &IntensityParams::default());
        let tagged: Tagged = (pair, t);
        Ok(vec![("transfo".into(), DataValue::opaque(tagged))])
    };
    let baladin = |inputs: &[Token]| -> Result<Out, String> {
        let (pair, _init) = transfo_of(&inputs[0])?;
        let reference = volume_of(&inputs[1])?;
        let floating = volume_of(&inputs[2])?;
        let t = block_match(reference, floating, &BlockMatchParams::default())
            .ok_or("block matching found no informative blocks")?;
        let tagged: Tagged = (pair, t);
        Ok(vec![("transfo".into(), DataValue::opaque(tagged))])
    };
    // The synchronization processor: consumes the whole result streams.
    let multi_transfo_test = move |inputs: &[Token]| -> Result<Out, String> {
        let names = ["crestMatch", "PFRegister", "Yasmina", "Baladin"];
        let mut per_pair: HashMap<u32, Vec<AlgorithmResult>> = HashMap::new();
        for (port, name) in names.iter().enumerate() {
            let list = inputs[port]
                .value
                .as_list()
                .ok_or("expected collected stream")?;
            for v in list {
                let (pair, transform) =
                    *v.downcast::<Tagged>().ok_or("expected tagged transform")?;
                per_pair.entry(pair).or_default().push(AlgorithmResult {
                    algorithm: name.to_string(),
                    transform,
                });
            }
        }
        let mut pair_results: Vec<PairResults> = per_pair
            .into_iter()
            .map(|(pair_id, results)| PairResults {
                pair_id: pair_id as usize,
                results,
            })
            .collect();
        pair_results.sort_by_key(|p| p.pair_id);
        let report = bronze_standard(&pair_results);
        Ok(vec![
            ("report".into(), DataValue::opaque(report)),
            ("pairs".into(), DataValue::opaque(pair_results)),
        ])
    };

    let mut wf = Workflow::new("bronze-standard-local");
    let ref_src = wf.add_source("referenceImage");
    let float_src = wf.add_source("floatingImage");
    let cl = wf.add_service(
        "crestLines",
        &["reference", "floating"],
        &["crest_reference", "crest_floating"],
        ServiceBinding::local(crest_lines),
    );
    let cm = wf.add_service(
        "crestMatch",
        &["crest_reference", "crest_floating"],
        &["transfo"],
        ServiceBinding::local(crest_match),
    );
    let icp_p = wf.add_service(
        "PFMatchICP",
        &["init", "crest_reference", "crest_floating"],
        &["raw_transfo"],
        ServiceBinding::local(pf_match),
    );
    let reg_p = wf.add_service(
        "PFRegister",
        &["raw"],
        &["transfo"],
        ServiceBinding::local(pf_register),
    );
    let yas = wf.add_service(
        "Yasmina",
        &["init", "reference", "floating"],
        &["transfo"],
        ServiceBinding::local(yasmina),
    );
    let bal = wf.add_service(
        "Baladin",
        &["init", "reference", "floating"],
        &["transfo"],
        ServiceBinding::local(baladin),
    );
    let mtt = wf.add_service(
        "MultiTransfoTest",
        &["transfo_cm", "transfo_pf", "transfo_y", "transfo_b"],
        &["report", "pairs"],
        ServiceBinding::local(multi_transfo_test),
    );
    wf.set_synchronization(mtt, true);
    let report_sink = wf.add_sink("accuracy");
    let pairs_sink = wf.add_sink("pair_transforms");

    wf.connect(ref_src, "out", cl, "reference").unwrap();
    wf.connect(float_src, "out", cl, "floating").unwrap();
    wf.connect(cl, "crest_reference", cm, "crest_reference")
        .unwrap();
    wf.connect(cl, "crest_floating", cm, "crest_floating")
        .unwrap();
    wf.connect(cm, "transfo", icp_p, "init").unwrap();
    wf.connect(cl, "crest_reference", icp_p, "crest_reference")
        .unwrap();
    wf.connect(cl, "crest_floating", icp_p, "crest_floating")
        .unwrap();
    wf.connect(icp_p, "raw_transfo", reg_p, "raw").unwrap();
    wf.connect(cm, "transfo", yas, "init").unwrap();
    wf.connect(ref_src, "out", yas, "reference").unwrap();
    wf.connect(float_src, "out", yas, "floating").unwrap();
    wf.connect(cm, "transfo", bal, "init").unwrap();
    wf.connect(ref_src, "out", bal, "reference").unwrap();
    wf.connect(float_src, "out", bal, "floating").unwrap();
    wf.connect(cm, "transfo", mtt, "transfo_cm").unwrap();
    wf.connect(reg_p, "transfo", mtt, "transfo_pf").unwrap();
    wf.connect(yas, "transfo", mtt, "transfo_y").unwrap();
    wf.connect(bal, "transfo", mtt, "transfo_b").unwrap();
    wf.connect(mtt, "report", report_sink, "in").unwrap();
    wf.connect(mtt, "pairs", pairs_sink, "in").unwrap();

    let inputs = InputData::new()
        .set(
            "referenceImage",
            pairs
                .iter()
                .map(|p| DataValue::opaque(p.reference.clone()))
                .collect(),
        )
        .set(
            "floatingImage",
            pairs
                .iter()
                .map(|p| DataValue::opaque(p.floating.clone()))
                .collect(),
        );

    println!("enacting the Fig. 9 workflow on the thread-pool backend (DP + SP)...");
    let mut backend = LocalBackend::new();
    let result =
        run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).expect("bronze standard run");
    println!(
        "done in {:.2} s wall clock, {} service invocations\n",
        result.makespan.as_secs_f64(),
        result.jobs_submitted
    );

    let report = result.sink("accuracy")[0]
        .value
        .downcast::<reg::BronzeReport>()
        .expect("report token");
    println!("Bronze-Standard accuracy (deviation from the leave-one-out mean):");
    for acc in &report.accuracies {
        println!(
            "  {:12} rotation {:6.3} deg   translation {:6.3} voxels   ({} pairs)",
            acc.algorithm, acc.rotation_error_deg, acc.translation_error, acc.pairs
        );
    }

    // Ground truth — available only because the phantom motions are known.
    let pair_results = result.sink("pair_transforms")[0]
        .value
        .downcast::<Vec<PairResults>>()
        .expect("pairs token");
    println!("\nTrue errors vs the synthetic ground truth:");
    let mut by_algo: HashMap<&str, (f64, f64, usize)> = HashMap::new();
    for pr in pair_results {
        let truth = truths[pr.pair_id];
        for r in &pr.results {
            let e = by_algo
                .entry(Box::leak(r.algorithm.clone().into_boxed_str()))
                .or_insert((0.0, 0.0, 0));
            e.0 += r.transform.rotation_error(truth).to_degrees();
            e.1 += r.transform.translation_error(truth);
            e.2 += 1;
        }
    }
    let mut rows: Vec<_> = by_algo.into_iter().collect();
    rows.sort_by_key(|(n, _)| *n);
    for (name, (rot, trans, n)) in rows {
        println!(
            "  {:12} rotation {:6.3} deg   translation {:6.3} voxels",
            name,
            rot / n as f64,
            trans / n as f64
        );
    }
    println!("\nThe mean registration (the bronze standard) over-determines the geometry,");
    println!("so consistent algorithms score tightly — the statistical idea of S4.2.");
}
