//! Quickstart: build the paper's Fig. 1 workflow (P1 feeding P2 and
//! P3), enact it over three data sets under each parallelism
//! configuration on an ideal virtual-time backend, and print the
//! execution diagrams that reproduce Figs. 4 and 5.
//!
//! Run with: `cargo run --example quickstart`

use moteur_repro::moteur::diagram;
use moteur_repro::moteur::prelude::*;
use moteur_repro::wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn unit_service(name: &str) -> ServiceBinding {
    let descriptor = ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    };
    // Every invocation takes exactly 1 s of (virtual) compute.
    ServiceBinding::descriptor(descriptor, ServiceProfile::new(1.0))
}

fn main() {
    // The Fig. 1 graph: source → P1 → {P2, P3} → sink.
    let mut wf = Workflow::new("fig1");
    let src = wf.add_source("source");
    let p1 = wf.add_service("P1", &["in"], &["out"], unit_service("P1"));
    let p2 = wf.add_service("P2", &["in"], &["out"], unit_service("P2"));
    let p3 = wf.add_service("P3", &["in"], &["out"], unit_service("P3"));
    let sink = wf.add_sink("results");
    wf.connect(src, "out", p1, "in").unwrap();
    wf.connect(p1, "out", p2, "in").unwrap();
    wf.connect(p1, "out", p3, "in").unwrap();
    wf.connect(p2, "out", sink, "in").unwrap();
    wf.connect(p3, "out", sink, "in").unwrap();

    // Three independent data sets D0, D1, D2 (§3.3).
    let inputs = InputData::new().set(
        "source",
        (0..3)
            .map(|j| DataValue::File {
                gfn: format!("gfn://data/D{j}"),
                bytes: 1000,
            })
            .collect(),
    );

    for config in [
        EnactorConfig::nop(),
        EnactorConfig::dp(),
        EnactorConfig::sp(),
        EnactorConfig::sp_dp(),
    ] {
        let mut backend = VirtualBackend::new();
        let result = run(&wf, &inputs, config, &mut backend).expect("enactment succeeds");
        println!(
            "=== {} === makespan {} s, {} jobs, {} results collected",
            config.label(),
            result.makespan.as_secs_f64(),
            result.jobs_submitted,
            result.sink("results").len()
        );
        println!(
            "{}",
            diagram::render(&result.invocations, &["P3", "P2", "P1"])
        );
    }
    println!("Workflow parallelism lets P2 and P3 overlap in every configuration;");
    println!("DP stacks the three data sets into one slot per service (Fig. 4);");
    println!("SP pipelines them across services (Fig. 5).");
}
