//! The generic code wrapper in action (paper §3.6, Figs. 7–8): parse
//! the paper's exact crestLines descriptor, bind invocation data to it,
//! synthesise the command line, and show how composing two descriptors
//! into a virtual grouped service eliminates intermediate transfers.
//!
//! Run with: `cargo run --example wrapper_descriptor`

use moteur_repro::wrapper::{
    command_line, compose_group, crest_lines_example, plan_single, Binding, Catalog,
    ExecutableDescriptor, GroupMember,
};

fn main() {
    // --- The Fig. 8 descriptor, round-tripped through its XML form.
    let descriptor = crest_lines_example();
    let xml = descriptor.to_xml().to_pretty_string();
    println!("=== the paper's Fig. 8 executable descriptor ===\n{xml}");
    let reparsed = ExecutableDescriptor::parse(&xml).expect("round trip");
    assert_eq!(reparsed, descriptor);

    // --- Bind one invocation's data (dynamic declaration, §2.1).
    let binding = Binding::new()
        .bind_file("floating_image", "gfn://lacassagne/float000.hdr")
        .bind_file("reference_image", "gfn://lacassagne/ref000.hdr")
        .bind_value("scale", "2")
        .bind_output("crest_reference", "gfn://run42/crest_ref.crest", 400_000)
        .bind_output("crest_floating", "gfn://run42/crest_float.crest", 400_000);
    let cmd = command_line(&descriptor, &binding).expect("complete binding");
    println!("=== synthesised command line ===\n{cmd}\n");

    // --- Transfer plan for the single job.
    let mut catalog = Catalog::new();
    catalog.register("gfn://lacassagne/float000.hdr", 7_864_320);
    catalog.register("gfn://lacassagne/ref000.hdr", 7_864_320);
    let plan = plan_single(&descriptor, &binding, &catalog).expect("plan");
    println!("=== single-job plan ===");
    println!(
        "fetch {} files ({} bytes), store {} files ({} bytes)\n",
        plan.fetch.len(),
        plan.fetch_bytes(),
        plan.store.len(),
        plan.store_bytes()
    );

    // --- Group crestLines with a consumer (crestMatch) into one job.
    let consumer = ExecutableDescriptor::parse(
        r#"<description><executable name="CrestMatch">
             <access type="URL"><path value="http://colors.unice.fr"/></access>
             <value value="cmatch"/>
             <input name="c1" option="-c1"><access type="GFN"/></input>
             <input name="c2" option="-c2"><access type="GFN"/></input>
             <output name="transfo" option="-o"><access type="GFN"/></output>
           </executable></description>"#,
    )
    .expect("consumer descriptor");
    let consumer_binding = Binding::new()
        .bind_file("c1", "gfn://run42/crest_ref.crest")
        .bind_file("c2", "gfn://run42/crest_float.crest")
        .bind_output("transfo", "gfn://run42/transfo.trf", 2048);
    let grouped = compose_group(
        &[
            GroupMember {
                descriptor: descriptor.clone(),
                binding: binding.clone(),
            },
            GroupMember {
                descriptor: consumer.clone(),
                binding: consumer_binding.clone(),
            },
        ],
        &catalog,
        &["gfn://run42/transfo.trf".into()],
    )
    .expect("grouped plan");
    println!("=== grouped virtual service (crestLines + crestMatch) ===");
    for line in &grouped.command_lines {
        println!("  $ {line}");
    }
    let separate_fetch = plan.fetch_bytes()
        + plan_single(&consumer, &consumer_binding, &catalog)
            .unwrap()
            .fetch_bytes();
    println!(
        "\nfetch {} bytes grouped vs {} bytes as two jobs — the crest files never\n\
         touch a storage element, and one submission overhead disappears (Fig. 7).",
        grouped.fetch_bytes(),
        separate_fetch
    );
}
