//! Adapting job granularity to the observed grid load — the workflow
//! the paper sketches in §5.4: probe the grid, fit the overhead
//! distribution from the measured job records, let the probabilistic
//! model pick a batch size, and run the remaining workload with it.
//!
//! The model assumes per-job overheads are independent draws (an
//! uncongested grid with spare slots); this example runs on such a
//! grid. On a *saturated* grid, queue contention couples the jobs and
//! batching can cut both ways — `cargo run -p moteur-bench --bin
//! granularity` explores that regime quantitatively.
//!
//! Run with: `cargo run --release --example adaptive_granularity`

use moteur_repro::gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};
use moteur_repro::moteur::prelude::*;
use moteur_repro::moteur::{GranularityModel, SimBackend};
use moteur_repro::wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

const COMPUTE_SECS: f64 = 60.0;

/// An uncongested grid with heavy-tailed per-job overhead — the regime
/// the §5.4 probabilistic model targets.
fn spiky_grid() -> GridConfig {
    GridConfig {
        ces: vec![CeConfig::new("ce", 5000, 1.0)],
        submission_overhead: Distribution::LogNormal {
            median: 250.0,
            sigma: 1.0,
        },
        match_delay: Distribution::Constant(0.0),
        notify_delay: Distribution::Constant(0.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig {
            transfer_latency: 2.0,
            bandwidth: 2.0e6,
            congestion: 0.0,
        },
        typical_job_duration: 300.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

fn workflow() -> Workflow {
    let descriptor = ExecutableDescriptor {
        executable: FileItem {
            name: "process".into(),
            access: AccessMethod::Local,
            value: "process".into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    };
    let mut wf = Workflow::new("adaptive");
    let src = wf.add_source("data");
    let svc = wf.add_service(
        "process",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(descriptor, ServiceProfile::new(COMPUTE_SECS)),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", svc, "in").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();
    wf
}

fn inputs(lo: usize, hi: usize) -> InputData {
    InputData::new().set(
        "data",
        (lo..hi)
            .map(|j| DataValue::File {
                gfn: format!("gfn://d/{j}"),
                bytes: 4_096,
            })
            .collect(),
    )
}

fn main() {
    let wf = workflow();
    let total = 126usize;
    let probetotal = 16usize;

    // Phase 1: probe wave, unbatched, to sample today's grid weather.
    println!(
        "phase 1: probing the grid with {probetotal} unbatched jobs...",
        probetotal = probetotal
    );
    let mut backend = SimBackend::new(spiky_grid(), 99);
    let probe = run(
        &wf,
        &inputs(0, probetotal),
        EnactorConfig::sp_dp(),
        &mut backend,
    )
    .expect("probe wave");
    let records = backend.sim().records();
    let model = GranularityModel::fit_overheads(records, COMPUTE_SECS, total - probetotal);
    println!(
        "  fitted overhead: median {:.0} s, sigma {:.2} (from {} records)",
        model.overhead_median,
        model.overhead_sigma,
        records.len()
    );
    let g = model.optimal_batch();
    println!(
        "  recommended batch size: g* = {g} (predicted makespan {:.0} s)",
        model.expected_makespan(g)
    );

    // Phase 2: the remaining workload, batched as recommended, on the
    // same (still loaded) grid.
    println!(
        "\nphase 2: processing the remaining {} data with batch size {g}...",
        total - probetotal
    );
    let batched = run(
        &wf,
        &inputs(probetotal, total),
        EnactorConfig::sp_dp().with_batching(g),
        &mut backend,
    )
    .expect("batched wave");

    // Counterfactual: the same wave without batching, fresh identical grid.
    let mut fresh = SimBackend::new(spiky_grid(), 99);
    let _warmup = run(
        &wf,
        &inputs(0, probetotal),
        EnactorConfig::sp_dp(),
        &mut fresh,
    )
    .expect("counterfactual warm-up");
    let unbatched = run(
        &wf,
        &inputs(probetotal, total),
        EnactorConfig::sp_dp(),
        &mut fresh,
    )
    .expect("counterfactual wave");

    println!(
        "  probe wave:        {:>8.0} s, {} jobs",
        probe.makespan.as_secs_f64(),
        probe.jobs_submitted
    );
    println!(
        "  adaptive batched:  {:>8.0} s, {} jobs",
        batched.makespan.as_secs_f64(),
        batched.jobs_submitted
    );
    println!(
        "  unbatched control: {:>8.0} s, {} jobs",
        unbatched.makespan.as_secs_f64(),
        unbatched.jobs_submitted
    );
    println!(
        "\nadaptive granularity saved {:.0}% of the makespan on this run",
        100.0 * (1.0 - batched.makespan.as_secs_f64() / unbatched.makespan.as_secs_f64())
    );
}
