//! The paper's Fig. 2 workflow: a service-based optimization loop whose
//! iteration count is decided *at run time* — the pattern that task
//! based (DAG) workflow managers cannot express at all (§2.1).
//!
//! P1 initialises an estimate, P2 performs one optimization step, P3
//! evaluates the convergence criterion and routes the datum either back
//! to P2 (`again` port) or to the sink (`done` port). Here the "codes"
//! are a toy 1-D gradient descent on f(x) = (x − target)², one
//! independent descent per input datum.
//!
//! Run with: `cargo run --example optimization_loop`

use moteur_repro::moteur::prelude::*;

const TARGET: f64 = 3.0;
const RATE: f64 = 0.4;
const EPSILON: f64 = 1e-3;

fn main() {
    // P1: initial criterion value (the paper: "the output of processor
    // P1 would correspond to the initial value of this criterion").
    let init = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let x0 = inputs[0].value.as_num().ok_or("expected a number")?;
        Ok(vec![("out".into(), DataValue::from(x0))])
    };
    // P2: one gradient-descent step.
    let step = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let x = inputs[0].value.as_num().ok_or("expected a number")?;
        let grad = 2.0 * (x - TARGET);
        Ok(vec![("out".into(), DataValue::from(x - RATE * grad))])
    };
    // P3: convergence test with conditional output routing.
    let check = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
        let x = inputs[0].value.as_num().ok_or("expected a number")?;
        let port = if (x - TARGET).abs() < EPSILON {
            "done"
        } else {
            "again"
        };
        Ok(vec![(port.into(), DataValue::from(x))])
    };

    let mut wf = Workflow::new("fig2-loop");
    let src = wf.add_source("source");
    let p1 = wf.add_service("P1", &["in"], &["out"], ServiceBinding::local(init));
    let p2 = wf.add_service("P2", &["in"], &["out"], ServiceBinding::local(step));
    let p3 = wf.add_service(
        "P3",
        &["in"],
        &["again", "done"],
        ServiceBinding::local(check),
    );
    let sink = wf.add_sink("converged");
    wf.connect(src, "out", p1, "in").unwrap();
    wf.connect(p1, "out", p2, "in").unwrap();
    wf.connect(p2, "out", p3, "in").unwrap();
    wf.connect(p3, "again", p2, "in").unwrap(); // the loop of Fig. 2
    wf.connect(p3, "done", sink, "in").unwrap();
    assert!(
        wf.has_cycle(),
        "this graph would be illegal for a DAG manager"
    );

    // Several descents from very different starting points: each needs
    // a different number of iterations, unknown before execution.
    let starts = [0.0, 10.0, -50.0, 3.4, 1e6];
    let inputs = InputData::new().set(
        "source",
        starts.iter().map(|&x| DataValue::from(x)).collect(),
    );

    let mut backend = LocalBackend::new();
    let result = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).expect("loop converges");

    println!("start        iterations   final x");
    println!("----------------------------------");
    let per_datum: Vec<usize> = starts
        .iter()
        .enumerate()
        .map(|(j, _)| {
            result
                .invocations
                .iter()
                .filter(|r| r.processor == "P2" && r.index.0 == vec![j as u32])
                .count()
        })
        .collect();
    for (j, (&x0, iters)) in starts.iter().zip(&per_datum).enumerate() {
        let out = result
            .sink("converged")
            .iter()
            .find(|t| t.index.0 == vec![j as u32])
            .and_then(|t| t.value.as_num())
            .expect("every datum converges");
        println!("{x0:<12} {iters:<12} {out:.5}");
    }
    println!();
    println!(
        "total P2 invocations: {} — determined at run time, impossible to declare statically",
        result
            .invocations
            .iter()
            .filter(|r| r.processor == "P2")
            .count()
    );
}
