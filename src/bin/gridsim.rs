//! `moteur-gridsim` — drive the grid simulator directly, without the
//! workflow enactor, and expose the same observability surface
//! (`--openmetrics`, `--events`, `--spans`) as `moteur run`.
//!
//! Useful for characterising the simulated infrastructure itself: how
//! big and how variable is the per-job overhead a given grid
//! configuration produces, independent of any workflow structure.
//!
//! ```text
//! moteur-gridsim [--jobs N] [--compute SECS] [--seed N] [--grid egee|ideal]
//!                [--openmetrics out.om] [--events out.jsonl] [--spans out.jsonl]
//!                [--timeline out.json] [--timeline-csv out.csv]
//!                [--profile out.json] [--profile-collapsed out.folded]
//! ```
//!
//! `--profile` enables the deterministic self-profiler: the canonical
//! `moteur/prof/v1` document it writes contains only call and
//! allocation counters, so two runs with identical inputs produce
//! byte-identical files.
//!
//! `--timeline` samples the same virtual-time resource series as
//! `moteur run --timeline` (per-CE queue depth/running/utilization,
//! per-link bytes and bandwidth) and prints a bottleneck attribution.

use moteur_repro::gridsim::{summarize, GridConfig, GridJobSpec, GridSim, JobOutcome};
use moteur_repro::moteur::{
    detect_bottlenecks, prof_to_json, render_openmetrics_with_prof, EventSink, JsonlSink,
    MetricsSink, Obs, Prof, SpanSink, TimelineSink, TraceEvent,
};
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("moteur-gridsim: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: moteur-gridsim [--jobs N] [--compute SECS] [--seed N] [--grid egee|ideal]"
        );
        eprintln!("       [--openmetrics out.om] [--events out.jsonl] [--spans out.jsonl]");
        eprintln!("       [--timeline out.json] [--timeline-csv out.csv]");
        eprintln!("       [--profile out.json] [--profile-collapsed out.folded]");
        return ExitCode::from(2);
    }
    let jobs: usize = match flag_value(&args, "--jobs").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(25),
        Err(_) => return fail("--jobs needs a positive integer"),
    };
    let compute: f64 = match flag_value(&args, "--compute").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(120.0),
        Err(_) => return fail("--compute needs a number (seconds)"),
    };
    let seed: u64 = match flag_value(&args, "--seed").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(2006),
        Err(_) => return fail("--seed needs an integer"),
    };
    let grid_name = flag_value(&args, "--grid").unwrap_or("egee");
    let grid = match grid_name {
        "egee" => GridConfig::egee_2006(),
        "ideal" => GridConfig::ideal(),
        other => return fail(format!("unknown grid `{other}`")),
    };

    let events_path = flag_value(&args, "--events");
    let openmetrics_path = flag_value(&args, "--openmetrics");
    let spans_path = flag_value(&args, "--spans");
    let mut sinks: Vec<Box<dyn EventSink>> = Vec::new();
    if let Some(path) = events_path {
        match JsonlSink::create(path) {
            Ok(sink) => sinks.push(Box::new(sink)),
            Err(e) => return fail(format!("creating {path}: {e}")),
        }
    }
    let metrics = if openmetrics_path.is_some() {
        let (sink, registry) = MetricsSink::new();
        sinks.push(Box::new(sink));
        Some(registry)
    } else {
        None
    };
    let spans = if spans_path.is_some() || openmetrics_path.is_some() {
        let (sink, buffer) = SpanSink::new();
        sinks.push(Box::new(sink));
        Some(buffer)
    } else {
        None
    };
    let timeline_path = flag_value(&args, "--timeline");
    let timeline_csv_path = flag_value(&args, "--timeline-csv");
    let timeline = if timeline_path.is_some() || timeline_csv_path.is_some() {
        let sink = TimelineSink::new();
        let state = sink.state();
        sinks.push(Box::new(sink));
        Some(state)
    } else {
        None
    };
    let profile_path = flag_value(&args, "--profile");
    let profile_collapsed_path = flag_value(&args, "--profile-collapsed");
    let prof = if profile_path.is_some() || profile_collapsed_path.is_some() {
        Prof::enabled()
    } else {
        Prof::off()
    };
    let obs = Obs::new(sinks).with_prof(prof.clone());

    eprintln!("submitting {jobs} jobs of {compute}s to the {grid_name} grid (seed {seed})...");
    let mut sim = GridSim::new(grid, seed);
    if obs.enabled() {
        let forward = obs.clone();
        sim.set_observer(Box::new(move |e| {
            forward.record(&TraceEvent::from_sim(e));
        }));
    }
    if prof.is_enabled() {
        sim.set_prof(prof.clone());
    }
    sim.reserve_jobs(jobs);
    for i in 0..jobs {
        // Synthesize the enactor-level submission the span/metric
        // layers key item lifecycles on: here each grid job is its own
        // "invocation" of one synthetic service.
        obs.record(&TraceEvent::JobSubmitted {
            at: sim.now(),
            invocation: i as u64,
            processor: "synthetic".to_string(),
            grid: true,
            batched: 1,
        });
        sim.submit(
            GridJobSpec::new(format!("job{i}"), compute)
                .with_tag(i as u64)
                .with_files(vec![7_800_000], vec![400_000]),
        );
    }
    let mut delivered = 0usize;
    while let Some(done) = sim.next_completion() {
        let event = if done.outcome == JobOutcome::Success {
            TraceEvent::JobCompleted {
                at: done.delivered_at,
                invocation: done.tag,
                processor: "synthetic".to_string(),
            }
        } else {
            TraceEvent::JobFailed {
                at: done.delivered_at,
                invocation: done.tag,
                processor: "synthetic".to_string(),
                error: "grid job failed beyond retry budget".to_string(),
            }
        };
        obs.record(&event);
        delivered += 1;
    }
    if let Err(e) = obs.flush() {
        return fail(format!("flushing event sinks: {e}"));
    }

    let summary = summarize(sim.records());
    println!(
        "delivered {delivered}/{jobs} jobs; makespan {:.1}s; {} failures, {} resubmissions",
        summary.makespan_secs, summary.failures, summary.resubmissions
    );
    println!(
        "overhead: mean {:.1}s ± {:.1}s, p50 {:.1}s, p95 {:.1}s, p99 {:.1}s",
        summary.mean_overhead_secs,
        summary.std_overhead_secs,
        summary.p50_overhead_secs,
        summary.p95_overhead_secs,
        summary.p99_overhead_secs,
    );
    println!(
        "mean queue wait {:.1}s, mean compute {:.1}s",
        summary.mean_queue_wait_secs, summary.mean_compute_secs
    );

    if let Some(path) = events_path {
        println!("events written to {path}");
    }
    if let Some(path) = spans_path {
        let tree = spans.as_ref().expect("span sink installed").snapshot();
        match std::fs::write(path, tree.to_jsonl()) {
            Ok(()) => println!("spans written to {path} ({} spans)", tree.len()),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if let Some(path) = openmetrics_path {
        let registry = metrics.as_ref().expect("metrics sink installed");
        let tree = spans.as_ref().expect("span sink installed").snapshot();
        let guard = registry.lock().expect("metrics registry");
        let prof_report = prof.is_enabled().then(|| prof.report());
        let text = render_openmetrics_with_prof(&guard, Some(&tree), prof_report.as_ref());
        drop(guard);
        match std::fs::write(path, text) {
            Ok(()) => println!("openmetrics written to {path}"),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if let Some(state) = &timeline {
        let state = state.lock().expect("timeline state");
        if let Some(path) = timeline_path {
            match std::fs::write(path, state.timeline.to_json()) {
                Ok(()) => println!("timeline written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        if let Some(path) = timeline_csv_path {
            match std::fs::write(path, state.timeline.to_csv()) {
                Ok(()) => println!("timeline csv written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        println!();
        print!("{}", detect_bottlenecks(&state.stats).render());
    }
    if prof.is_enabled() {
        let report = prof.report();
        if let Some(path) = profile_path {
            match std::fs::write(path, prof_to_json(&report)) {
                Ok(()) => println!("profile written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        if let Some(path) = profile_collapsed_path {
            match std::fs::write(path, report.render_collapsed()) {
                Ok(()) => println!("collapsed stacks written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        eprint!("{}", report.render_table());
    }
    ExitCode::SUCCESS
}
