//! `moteur` — command-line workflow enactor.
//!
//! The user-facing face of the reproduction (the paper's MOTEUR was
//! "freely available for download"): load a Scufl workflow and an input
//! data-set document, enact on the simulated grid, and report.
//!
//! ```text
//! moteur run <workflow.xml> <inputs.xml> [--config sp+dp] [--seed N]
//!            [--grid egee|ideal] [--batch G] [--report] [--diagram]
//!            [--provenance out.xml] [--events out.jsonl]
//!            [--chrome-trace trace.json] [--metrics metrics.json]
//!            [--openmetrics metrics.om] [--spans spans.jsonl]
//!            [--critical-path] [--cache-dir DIR] [--fetch-cost SECS]
//!            [--continue-on-error] [--workflow-report out.json]
//!            [--retry-policy fixed|backoff|jitter] [--max-retries N]
//!            [--retry-base S] [--retry-factor F] [--retry-max-delay S]
//!            [--timeout S] [--adaptive-timeout]
//!            [--on-timeout resubmit|replicate] [--max-replicas N]
//!            [--blacklist-after N]
//!            [--timeline out.json] [--timeline-csv out.csv] [--slo FACTOR]
//!            [--profile out.json] [--profile-collapsed out.folded]
//! moteur timeline render <timeline.json> [--heatmap METRIC] [--width N]
//! moteur lint <workflow.xml> [--json] [--deny-warnings] [--predict]
//! moteur validate <workflow.xml>
//! moteur group <workflow.xml>          # print the grouped workflow
//! moteur dot <workflow.xml>            # Graphviz export
//! moteur cache <stats|gc|clear> <dir>  # inspect/maintain a data-manager store
//! moteur example                       # write bronze-standard.xml + inputs-12.xml
//! ```
//!
//! `--cache-dir` attaches the provenance-keyed data manager: completed
//! deterministic invocations are memoized into `DIR`, and a later run
//! over the same inputs (same process or a warm restart) elides the
//! memoized grid jobs, replaying their outputs at `--fetch-cost`
//! simulated seconds per hit.
//!
//! The fault-tolerance flags select the retry policy applied to failed
//! invocations, an optional timeout (fixed seconds, or percentile-
//! adaptive with `--adaptive-timeout`, where `--timeout` then serves as
//! the warm-up fallback budget) with its action (cancel-and-resubmit,
//! or speculative replication — first completion wins), and CE
//! blacklisting. `--continue-on-error` quarantines terminally failed
//! data items instead of aborting: the run completes the independent
//! items, prints a workflow report (JSON with `--workflow-report`),
//! and exits non-zero.
//!
//! `--timeline` records virtual-time resource series (per-CE queue
//! depth/running/utilization, per-link bytes and bandwidth, enactor
//! gauges) into a byte-stable `moteur/timeline/v1` JSON file and prints
//! a bottleneck attribution; `--slo FACTOR` arms a burn-rate check
//! against the eq. 1–4 predicted makespan, emitting `slo_breached`
//! when the projected makespan exceeds prediction × FACTOR.
//!
//! `--profile` enables the always-compiled self-profiler and writes the
//! canonical `moteur/prof/v1` document (deterministic: byte-identical
//! across processes for the same run); `--profile-collapsed` writes a
//! collapsed-stack export loadable by inferno/flamegraph.pl. Either
//! flag also prints the sorted hot-spot table to stderr.

use moteur_repro::bench::{bronze_inputs, bronze_workflow_xml};
use moteur_repro::gridsim::Distribution;
use moteur_repro::gridsim::GridConfig;
use moteur_repro::moteur::lint::{explain, prediction_to_json, render_explain, LintReport};
use moteur_repro::moteur::{
    check_protocol, chrome_trace_with_metrics, critical_path, detect_bottlenecks, diagram,
    export_provenance, group_workflow, lint_workflow, plan_to_json, plan_workflow, predict,
    prof_to_json, render_critical_path, render_human, render_openmetrics_with_prof, render_plan,
    render_prediction, render_report, report_to_json, run_fault_tolerant,
    run_fault_tolerant_cached, serve, to_dot, Backend, Daemon, DaemonConfig, DataStore,
    EnactorConfig, EventSink, FtConfig, FtPolicy, InputData, JsonlSink, MetricsSink, MoteurError,
    Obs, PlanOptions, Prof, RetryPolicy, SimBackend, SloConfig, SourceSizes, SpanSink, StoreConfig,
    TenantConfig, Timeline, TimelineSink, TimeoutAction, TimeoutPolicy, VirtualBackend, Workflow,
};
use moteur_repro::scufl::{
    lint_source, parse_input_data, parse_workflow, write_input_data, write_workflow,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("group") => cmd_group(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("example") => cmd_example(),
        _ => {
            eprintln!(
                "usage: moteur <run|timeline|lint|plan|validate|group|dot|cache|example> ..."
            );
            eprintln!("  run <workflow.xml> <inputs.xml> [--config nop|jg|sp|dp|sp+dp|sp+dp+jg]");
            eprintln!("      [--seed N] [--grid egee|ideal] [--batch G] [--report] [--diagram]");
            eprintln!("      [--provenance out.xml] [--events out.jsonl]");
            eprintln!("      [--chrome-trace trace.json] [--metrics metrics.json]");
            eprintln!("      [--openmetrics metrics.om] [--spans spans.jsonl]");
            eprintln!("      [--critical-path] [--no-verify]");
            eprintln!("      [--cache-dir DIR] [--fetch-cost SECS]");
            eprintln!("      [--continue-on-error] [--workflow-report out.json]");
            eprintln!("      [--retry-policy fixed|backoff|jitter] [--max-retries N]");
            eprintln!("      [--retry-base S] [--retry-factor F] [--retry-max-delay S]");
            eprintln!("      [--timeout S] [--adaptive-timeout]");
            eprintln!("      [--on-timeout resubmit|replicate] [--max-replicas N]");
            eprintln!("      [--blacklist-after N]");
            eprintln!("      [--timeline out.json] [--timeline-csv out.csv] [--slo FACTOR]");
            eprintln!("      [--profile out.json] [--profile-collapsed out.folded]");
            eprintln!("  daemon [--socket PATH] [--cache DIR] [--fetch-cost SECS]");
            eprintln!("      [--grid virtual|ideal|egee] [--seed N] [--quantum N]");
            eprintln!("      [--max-workflows N] [--max-jobs N] [--weights t=W,...]");
            eprintln!("      [--check-protocol]");
            eprintln!("  timeline render <timeline.json> [--heatmap METRIC] [--width N]");
            eprintln!("  lint <workflow.xml> [--json] [--deny-warnings] [--predict]");
            eprintln!("      [--ndata N] [--overhead S]");
            eprintln!("  lint --explain M0xx                  # describe one rule code");
            eprintln!("  plan <workflow.xml> [--json] [--deny-warnings] [--ndata N]");
            eprintln!("      [--overhead S] [--bandwidth BPS] [--cap N] [--max-fragment N]");
            eprintln!("  validate <workflow.xml>");
            eprintln!("  group <workflow.xml>");
            eprintln!("  dot <workflow.xml>");
            eprintln!("  cache <stats|gc|clear> <dir>");
            eprintln!("  example");
            ExitCode::from(2)
        }
    }
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("moteur: {msg}");
    ExitCode::FAILURE
}

fn load_workflow(path: &str) -> Result<moteur_repro::moteur::Workflow, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_workflow(&text).map_err(|e| e.to_string())
}

/// `moteur timeline render` — re-render a timeline JSON export (from
/// `moteur run --timeline` or `moteur-gridsim --timeline`) as ASCII
/// sparklines, or as a per-CE heatmap with `--heatmap METRIC` (e.g.
/// `--heatmap queue_depth`).
fn cmd_timeline(args: &[String]) -> ExitCode {
    let (Some(action), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: moteur timeline render <timeline.json> [--heatmap METRIC] [--width N]");
        return ExitCode::from(2);
    };
    if action != "render" {
        return fail(format!("unknown timeline action `{action}` (render)"));
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {path}: {e}")),
    };
    let tl = match Timeline::from_json(&text) {
        Ok(tl) => tl,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let width: usize = match flag_value(args, "--width").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(72),
        Err(_) => return fail("--width needs a positive integer"),
    };
    match flag_value(args, "--heatmap") {
        Some(metric) => {
            let rendered = tl.render_heatmap(metric, width);
            if rendered.is_empty() {
                return fail(format!("{path}: no series named `*.{metric}`"));
            }
            print!("{rendered}");
        }
        None => print!("{}", tl.render(width)),
    }
    ExitCode::SUCCESS
}

/// `moteur lint` — run every static rule over a workflow file and
/// render the findings rustc-style (or as JSON). Exit code 0 when the
/// report passes, 1 when it fails (errors, or warnings under
/// `--deny-warnings`), 2 on usage errors.
fn cmd_lint(args: &[String]) -> ExitCode {
    if let Some(code) = flag_value(args, "--explain") {
        // Table-driven from the rule registry, so a code printed by CI
        // always resolves to its documentation.
        return match explain(code) {
            Some(doc) => {
                print!("{}", render_explain(doc));
                ExitCode::SUCCESS
            }
            None => fail(format!("unknown rule code `{code}` (expected M000–M085)")),
        };
    }
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: moteur lint <workflow.xml> [--json] [--deny-warnings] [--predict]");
        eprintln!("       moteur lint --explain M0xx");
        eprintln!(
            "       [--ndata N] [--overhead S]   (prediction campaign size / per-job overhead)"
        );
        return ExitCode::from(2);
    };
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let want_predict = args.iter().any(|a| a == "--predict");
    let n_data: usize = match flag_value(args, "--ndata").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(12),
        Err(_) => return fail("--ndata needs a positive integer"),
    };
    let overhead: f64 = match flag_value(args, "--overhead").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(0.0),
        Err(_) => return fail("--overhead needs a number (seconds)"),
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {path}: {e}")),
    };
    let (wf, parse_diags) = lint_source(&text);
    let mut report = LintReport::new(parse_diags);
    if let Some(wf) = &wf {
        report.extend(lint_workflow(wf).diagnostics);
    }
    report.sort();

    let prediction = match (want_predict, &wf) {
        (true, Some(wf)) => match predict(wf, n_data, overhead) {
            Ok(p) => Some(p),
            Err(e) => return fail(format!("--predict: {}", e.message())),
        },
        (true, None) => return fail("--predict: workflow does not parse; fix the errors first"),
        (false, _) => None,
    };

    if json {
        let lint_json = report_to_json(&report);
        match &prediction {
            // One JSON document even when both halves are requested.
            Some(p) => println!(
                "{{\"lint\":{lint_json},\"prediction\":{}}}",
                prediction_to_json(p)
            ),
            None => println!("{lint_json}"),
        }
    } else {
        print!("{}", render_human(&report, path, Some(&text)));
        if let Some(p) = &prediction {
            println!();
            print!("{}", render_prediction(p));
        }
    }
    if report.fails(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `moteur plan` — the whole-workflow static dataflow analysis: interval
/// cardinalities per processor, per-edge transfer-volume bounds, a greedy
/// site partition minimizing enactor-routed bytes, and the eq. 1–4
/// makespan prediction with and without that partition. Lint runs first
/// (same exit-code contract as `moteur lint`), so `plan --deny-warnings`
/// subsumes a lint gate.
fn cmd_plan(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: moteur plan <workflow.xml> [--json] [--deny-warnings]");
        eprintln!("       [--ndata N] [--overhead S] [--bandwidth BPS]");
        eprintln!("       [--cap N] [--max-fragment N]");
        return ExitCode::from(2);
    };
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let defaults = PlanOptions::default();
    let n_data: u64 = match flag_value(args, "--ndata").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(12),
        Err(_) => return fail("--ndata needs a positive integer"),
    };
    let overhead: f64 = match flag_value(args, "--overhead").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(defaults.overhead),
        Err(_) => return fail("--overhead needs a number (seconds)"),
    };
    let bandwidth: f64 = match flag_value(args, "--bandwidth").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(defaults.bandwidth),
        Err(_) => return fail("--bandwidth needs a number (bytes/second)"),
    };
    let explosion_cap: u64 = match flag_value(args, "--cap").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(defaults.explosion_cap),
        Err(_) => return fail("--cap needs a positive integer"),
    };
    let max_fragment: usize = match flag_value(args, "--max-fragment")
        .map(str::parse)
        .transpose()
    {
        Ok(v) => v.unwrap_or(defaults.max_fragment),
        Err(_) => return fail("--max-fragment needs a positive integer"),
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {path}: {e}")),
    };
    let (wf, parse_diags) = lint_source(&text);
    let mut report = LintReport::new(parse_diags);
    if let Some(wf) = &wf {
        report.extend(lint_workflow(wf).diagnostics);
    }
    report.sort();
    let Some(wf) = &wf else {
        print!("{}", render_human(&report, path, Some(&text)));
        return ExitCode::FAILURE;
    };

    let opts = PlanOptions {
        sizes: SourceSizes::uniform(n_data),
        overhead,
        bandwidth,
        explosion_cap,
        max_fragment,
        ..defaults
    };
    let plan = plan_workflow(wf, &opts);
    if json {
        println!("{}", plan_to_json(&plan));
    } else {
        if !report.diagnostics.is_empty() {
            print!("{}", render_human(&report, path, Some(&text)));
            println!();
        }
        print!("{}", render_plan(&plan));
    }
    if report.fails(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("validate needs a workflow file");
    };
    match load_workflow(path) {
        Ok(wf) => {
            println!(
                "{}: OK — {} processors, {} links, {} sources, {} sinks, critical path {}",
                path,
                wf.processors.len(),
                wf.links.len(),
                wf.sources().len(),
                wf.sinks().len(),
                wf.critical_path_services()
                    .map_or_else(|_| "n/a (cyclic)".into(), |n| n.to_string()),
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_group(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("group needs a workflow file");
    };
    let wf = match load_workflow(path) {
        Ok(wf) => wf,
        Err(e) => return fail(e),
    };
    match group_workflow(&wf) {
        Ok(grouped) => {
            eprintln!(
                "grouping: {} processors -> {}",
                wf.processors.len(),
                grouped.processors.len()
            );
            // Grouped bindings have no XML form; print the structure.
            for p in &grouped.processors {
                println!("{:?} {}", p.kind, p.name);
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_dot(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("dot needs a workflow file");
    };
    match load_workflow(path) {
        Ok(wf) => {
            print!("{}", to_dot(&wf));
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// `moteur cache` — inspect or maintain a persisted data-manager store
/// without enacting anything.
fn cmd_cache(args: &[String]) -> ExitCode {
    let (Some(action), Some(dir)) = (args.first(), args.get(1)) else {
        return fail("cache needs an action (stats|gc|clear) and a store directory");
    };
    let mut store = match DataStore::open(dir, StoreConfig::default()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    match action.as_str() {
        "stats" => {
            println!("{dir}: {}", store.stats());
            ExitCode::SUCCESS
        }
        "gc" => {
            let pruned = store.gc();
            if let Err(e) = store.save() {
                return fail(e);
            }
            println!(
                "pruned {pruned} dangling invocation(s); now {}",
                store.stats()
            );
            ExitCode::SUCCESS
        }
        "clear" => {
            store.clear();
            if let Err(e) = store.save() {
                return fail(e);
            }
            println!("cleared {dir}");
            ExitCode::SUCCESS
        }
        other => fail(format!("unknown cache action `{other}` (stats|gc|clear)")),
    }
}

fn cmd_example() -> ExitCode {
    let wf_path = "bronze-standard.xml";
    let data_path = "inputs-12.xml";
    if let Err(e) = std::fs::write(wf_path, bronze_workflow_xml()) {
        return fail(e);
    }
    let data = bronze_inputs(12);
    let doc = write_input_data(&[
        (
            "referenceImage",
            data.get("referenceImage").expect("built-in"),
        ),
        (
            "floatingImage",
            data.get("floatingImage").expect("built-in"),
        ),
        ("methodToTest", data.get("methodToTest").expect("built-in")),
    ])
    .expect("built-in inputs serialise");
    if let Err(e) = std::fs::write(data_path, doc) {
        return fail(e);
    }
    println!("wrote {wf_path} and {data_path}");
    println!("try: moteur run {wf_path} {data_path} --config sp+dp+jg --report");
    ExitCode::SUCCESS
}

/// SCUFL parser handed to the daemon so submissions carry workflow
/// source inline instead of file paths (the daemon may outlive the
/// submitting client's working directory).
fn daemon_parser(workflow: &str, inputs: &str) -> Result<(Workflow, InputData), MoteurError> {
    let w = parse_workflow(workflow).map_err(|e| MoteurError::new(e.message))?;
    let i = parse_input_data(inputs).map_err(|e| MoteurError::new(e.message))?;
    Ok((w, i))
}

fn cmd_daemon(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--check-protocol") {
        return match check_protocol() {
            Ok(ops) => {
                println!(
                    "moteur/daemon/v1 protocol ok ({} ops): {}",
                    ops.len(),
                    ops.join(", ")
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        };
    }

    let seed: u64 = match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(2006),
        Err(_) => return fail("--seed needs an integer"),
    };
    let backend: Box<dyn Backend> = match flag_value(args, "--grid").unwrap_or("virtual") {
        "virtual" => Box::new(VirtualBackend::new()),
        "ideal" => Box::new(SimBackend::new(GridConfig::ideal(), seed)),
        "egee" => Box::new(SimBackend::new(GridConfig::egee_2006(), seed)),
        other => return fail(format!("unknown grid `{other}` (virtual|ideal|egee)")),
    };

    let mut store_config = StoreConfig::default();
    if let Some(v) = flag_value(args, "--fetch-cost") {
        let Ok(secs) = v.parse::<f64>() else {
            return fail(format!("--fetch-cost needs seconds, got `{v}`"));
        };
        store_config = store_config.with_fetch_cost(Some(Distribution::Constant(secs)));
    }
    let store = match flag_value(args, "--cache") {
        Some(dir) => match DataStore::open(dir, store_config) {
            Ok(s) => s,
            Err(e) => return fail(e),
        },
        None => DataStore::in_memory(store_config),
    };

    let mut tenant_defaults = TenantConfig::default();
    if let Some(v) = flag_value(args, "--max-workflows") {
        match v.parse() {
            Ok(n) => tenant_defaults.max_inflight_workflows = n,
            Err(_) => return fail(format!("--max-workflows needs an integer, got `{v}`")),
        }
    }
    if let Some(v) = flag_value(args, "--max-jobs") {
        match v.parse() {
            Ok(n) => tenant_defaults.max_inflight_jobs = n,
            Err(_) => return fail(format!("--max-jobs needs an integer, got `{v}`")),
        }
    }
    let quantum: usize = match flag_value(args, "--quantum").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(8),
        Err(_) => return fail("--quantum needs an integer"),
    };
    let mut config = DaemonConfig {
        tenant_defaults,
        quantum,
        ..DaemonConfig::default()
    };
    if let Some(spec) = flag_value(args, "--weights") {
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let Some((name, weight)) = pair.split_once('=') else {
                return fail(format!("--weights wants tenant=WEIGHT pairs, got `{pair}`"));
            };
            let Ok(weight) = weight.parse::<u32>() else {
                return fail(format!("weight for `{name}` must be an integer"));
            };
            if weight == 0 {
                return fail(format!(
                    "weight for `{name}` must be positive: weight 0 would \
                     starve the tenant's workflows forever"
                ));
            }
            config.tenant_overrides.insert(
                name.to_string(),
                TenantConfig {
                    weight,
                    ..config.tenant_defaults
                },
            );
        }
    }

    let mut daemon = Daemon::new(backend, store, daemon_parser, config);
    let served = match flag_value(args, "--socket") {
        Some(path) => serve_socket(&mut daemon, path),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            serve(&mut daemon, stdin.lock(), &mut out).map(|_| ())
        }
    };
    if let Err(e) = served {
        return fail(e);
    }
    // Persist the memo table so the next daemon (or one-shot run)
    // starts warm; in-memory stores make this a no-op.
    if let Err(e) = daemon.store().save() {
        return fail(e);
    }
    ExitCode::SUCCESS
}

/// Accept-loop for `--socket`: serve one connection at a time (the
/// daemon itself is single-threaded by design — concurrency lives in
/// the multiplexed instances) until a client sends `shutdown`.
#[cfg(unix)]
fn serve_socket(daemon: &mut Daemon, path: &str) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    eprintln!("moteur daemon: listening on {path}");
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let reader = std::io::BufReader::new(stream.try_clone()?);
                let mut writer = stream;
                match serve(daemon, reader, &mut writer) {
                    Ok(true) => break,
                    Ok(false) => {}
                    Err(e) => eprintln!("moteur daemon: connection error: {e}"),
                }
            }
            Err(e) => eprintln!("moteur daemon: accept error: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_daemon: &mut Daemon, _path: &str) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket needs a unix platform; use stdin/stdout mode instead",
    ))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Build the fault-tolerance configuration from `moteur run` flags.
/// Without any FT flag this reproduces the legacy enactor behaviour
/// (immediate resubmission up to `max_job_retries`, no timeout).
fn parse_ft_config(args: &[String], legacy_max_retries: u32) -> Result<FtConfig, String> {
    fn parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
        flag_value(args, flag)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("{flag} needs a valid number, got `{v}`"))
            })
            .transpose()
    }

    let max_retries: u32 = parsed(args, "--max-retries")?.unwrap_or(legacy_max_retries);
    let base_delay: f64 = parsed(args, "--retry-base")?.unwrap_or(10.0);
    let factor: f64 = parsed(args, "--retry-factor")?.unwrap_or(2.0);
    let max_delay: f64 = parsed(args, "--retry-max-delay")?.unwrap_or(300.0);
    let retry = match flag_value(args, "--retry-policy").unwrap_or("fixed") {
        "fixed" => RetryPolicy::Fixed { max_retries },
        "backoff" => RetryPolicy::ExponentialBackoff {
            max_retries,
            base_delay,
            factor,
            max_delay,
        },
        "jitter" => RetryPolicy::Jittered {
            max_retries,
            base_delay,
            factor,
            max_delay,
        },
        other => {
            return Err(format!(
                "unknown retry policy `{other}` (fixed|backoff|jitter)"
            ))
        }
    };

    let timeout_secs: Option<f64> = parsed(args, "--timeout")?;
    let timeout = if args.iter().any(|a| a == "--adaptive-timeout") {
        // `--timeout` doubles as the warm-up fallback; without it the
        // timeout stays disabled until enough completions accrue.
        TimeoutPolicy::Adaptive {
            percentile: 0.95,
            multiplier: 3.0,
            min_samples: 5,
            fallback: timeout_secs.unwrap_or(f64::INFINITY),
        }
    } else {
        match timeout_secs {
            Some(seconds) => TimeoutPolicy::Fixed { seconds },
            None => TimeoutPolicy::None,
        }
    };

    let max_replicas: u32 = parsed(args, "--max-replicas")?.unwrap_or(1);
    let on_timeout = match flag_value(args, "--on-timeout").unwrap_or("resubmit") {
        "resubmit" => TimeoutAction::Resubmit,
        "replicate" => TimeoutAction::Replicate { max_replicas },
        other => {
            return Err(format!(
                "unknown timeout action `{other}` (resubmit|replicate)"
            ))
        }
    };

    let mut ft = FtConfig::from_legacy(legacy_max_retries)
        .with_default(FtPolicy {
            retry,
            timeout,
            on_timeout,
        })
        .with_continue_on_error(args.iter().any(|a| a == "--continue-on-error"));
    if let Some(threshold) = parsed::<u32>(args, "--blacklist-after")? {
        ft = ft.with_ce_blacklist(threshold);
    }
    Ok(ft)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (Some(wf_path), Some(data_path)) = (args.first(), args.get(1)) else {
        return fail("run needs a workflow file and an input data file");
    };
    let wf = match load_workflow(wf_path) {
        Ok(wf) => wf,
        Err(e) => return fail(e),
    };
    let inputs = match std::fs::read_to_string(data_path)
        .map_err(|e| format!("reading {data_path}: {e}"))
        .and_then(|t| parse_input_data(&t).map_err(|e| e.to_string()))
    {
        Ok(d) => d,
        Err(e) => return fail(e),
    };

    let label = flag_value(args, "--config").unwrap_or("sp+dp");
    let Some(mut config) = EnactorConfig::preset(label) else {
        return fail(format!("unknown config `{label}`"));
    };
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2006);
    config = config.with_seed(seed);
    if let Some(batch) = flag_value(args, "--batch").and_then(|v| v.parse().ok()) {
        config = config.with_batching(batch);
    }
    if args.iter().any(|a| a == "--no-verify") {
        config = config.without_preflight();
    }
    let config_name = flag_value(args, "--config").unwrap_or("sp+dp");
    if let Some(factor) = flag_value(args, "--slo") {
        let Ok(factor) = factor.parse::<f64>() else {
            return fail("--slo needs a number (multiple of the predicted makespan)");
        };
        // Objective = the paper's eq. 1–4 makespan for this campaign
        // size, scaled by the tolerated burn factor.
        let n_data = wf
            .sources()
            .iter()
            .map(|&p| {
                inputs
                    .get(&wf.processors[p.0].name)
                    .map_or(0, <[moteur_repro::moteur::DataValue]>::len)
            })
            .max()
            .unwrap_or(0)
            .max(1);
        let prediction = match predict(&wf, n_data, 0.0) {
            Ok(p) => p,
            Err(e) => return fail(format!("--slo: {}", e.message())),
        };
        let Some(row) = prediction.row(config_name) else {
            return fail(format!("--slo: no prediction for config `{config_name}`"));
        };
        config = config.with_slo(SloConfig {
            predicted_makespan_secs: row.makespan,
            factor,
            expected_jobs: row.jobs as usize,
        });
        eprintln!(
            "slo: predicted makespan {:.1} s x {factor} => breach above {:.1} s",
            row.makespan,
            row.makespan * factor,
        );
    }
    let grid = match flag_value(args, "--grid").unwrap_or("egee") {
        "egee" => GridConfig::egee_2006(),
        "ideal" => GridConfig::ideal(),
        other => return fail(format!("unknown grid `{other}`")),
    };
    let cache_dir = flag_value(args, "--cache-dir");
    let fetch_cost: Option<f64> = match flag_value(args, "--fetch-cost").map(str::parse).transpose()
    {
        Ok(v) => v,
        Err(_) => return fail("--fetch-cost needs a number (seconds)"),
    };
    if fetch_cost.is_some() && cache_dir.is_none() {
        return fail("--fetch-cost requires --cache-dir");
    }
    let mut store = match cache_dir {
        Some(dir) => {
            // Memoization advisories (M070) never block enactment, so
            // the error-only preflight skips them; surface them here
            // where the user has actually asked for caching.
            for d in lint_workflow(&wf)
                .diagnostics
                .iter()
                .filter(|d| d.code == "M070")
            {
                eprintln!("warning[M070]: {}", d.message);
            }
            let mut store_config = StoreConfig::default();
            if let Some(secs) = fetch_cost {
                store_config = store_config.with_fetch_cost(Some(Distribution::Constant(secs)));
            }
            match DataStore::open(dir, store_config) {
                Ok(s) => Some(s),
                Err(e) => return fail(e),
            }
        }
        None => None,
    };

    // Observability sinks are only attached when a flag asks for them, so
    // a plain `moteur run` keeps the zero-overhead no-op path.
    let events_path = flag_value(args, "--events");
    let metrics_path = flag_value(args, "--metrics");
    let chrome_path = flag_value(args, "--chrome-trace");
    let openmetrics_path = flag_value(args, "--openmetrics");
    let spans_path = flag_value(args, "--spans");
    let mut sinks: Vec<Box<dyn EventSink>> = Vec::new();
    if let Some(path) = events_path {
        match JsonlSink::create(path) {
            Ok(sink) => sinks.push(Box::new(sink)),
            Err(e) => return fail(format!("creating {path}: {e}")),
        }
    }
    let metrics = if metrics_path.is_some() || chrome_path.is_some() || openmetrics_path.is_some() {
        let (sink, registry) = MetricsSink::new();
        sinks.push(Box::new(sink));
        Some(registry)
    } else {
        None
    };
    let spans = if spans_path.is_some() || openmetrics_path.is_some() {
        let (sink, buffer) = SpanSink::new();
        sinks.push(Box::new(sink));
        Some(buffer)
    } else {
        None
    };
    let timeline_path = flag_value(args, "--timeline");
    let timeline_csv_path = flag_value(args, "--timeline-csv");
    let timeline = if timeline_path.is_some()
        || timeline_csv_path.is_some()
        || flag_value(args, "--slo").is_some()
    {
        let sink = TimelineSink::new();
        let state = sink.state();
        sinks.push(Box::new(sink));
        Some(state)
    } else {
        None
    };
    let profile_path = flag_value(args, "--profile");
    let profile_collapsed_path = flag_value(args, "--profile-collapsed");
    let prof = if profile_path.is_some() || profile_collapsed_path.is_some() {
        Prof::enabled()
    } else {
        Prof::off()
    };
    let obs = Obs::new(sinks).with_prof(prof.clone());

    eprintln!(
        "enacting `{}` [{}] on the {} grid (seed {seed})...",
        wf.name,
        config.label(),
        flag_value(args, "--grid").unwrap_or("egee")
    );
    let ft = match parse_ft_config(args, config.max_job_retries) {
        Ok(ft) => ft,
        Err(e) => return fail(e),
    };
    let mut backend = SimBackend::with_obs(grid, seed, &obs);
    let run_result = match store.as_mut() {
        Some(s) => {
            run_fault_tolerant_cached(&wf, &inputs, config, &ft, &mut backend, obs.clone(), s)
        }
        None => run_fault_tolerant(&wf, &inputs, config, &ft, &mut backend, obs.clone()),
    };
    let result = match run_result {
        Ok(r) => r,
        Err(e) if e.is_lint() => {
            return fail(format!(
                "{e}\n  run `moteur lint {wf_path}` for details, or `--no-verify` to enact anyway"
            ))
        }
        Err(e) => return fail(e),
    };
    if let Err(e) = obs.flush() {
        return fail(format!("flushing event sinks: {e}"));
    }
    if let Some(s) = &store {
        if let Err(e) = s.save() {
            return fail(format!("saving cache: {e}"));
        }
        println!("cache {}: {}", cache_dir.unwrap_or_default(), s.stats());
    }
    println!(
        "completed in {:.1} s simulated time ({:.2} h), {} jobs submitted",
        result.makespan.as_secs_f64(),
        result.makespan.as_secs_f64() / 3600.0,
        result.jobs_submitted,
    );
    for (sink, tokens) in &result.sink_outputs {
        println!("sink {sink}: {} result(s)", tokens.len());
    }
    if args.iter().any(|a| a == "--report") {
        println!();
        print!("{}", render_report(&result));
    }
    if let Some(path) = flag_value(args, "--provenance") {
        match std::fs::write(path, export_provenance(&result)) {
            Ok(()) => println!("provenance written to {path}"),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if let Some(path) = events_path {
        println!("events written to {path}");
    }
    if let Some(path) = metrics_path {
        let registry = metrics.as_ref().expect("metrics sink installed");
        let json = registry.lock().expect("metrics registry").to_json();
        match std::fs::write(path, json) {
            Ok(()) => println!("metrics written to {path}"),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if let Some(path) = chrome_path {
        let registry = metrics.as_ref().expect("metrics sink installed");
        let guard = registry.lock().expect("metrics registry");
        let json = chrome_trace_with_metrics(&result, Some(&guard));
        drop(guard);
        match std::fs::write(path, json) {
            Ok(()) => println!("chrome trace written to {path} (load in ui.perfetto.dev)"),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if let Some(path) = spans_path {
        let tree = spans.as_ref().expect("span sink installed").snapshot();
        match std::fs::write(path, tree.to_jsonl()) {
            Ok(()) => println!("spans written to {path} ({} spans)", tree.len()),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if let Some(path) = openmetrics_path {
        let registry = metrics.as_ref().expect("metrics sink installed");
        let tree = spans.as_ref().expect("span sink installed").snapshot();
        let guard = registry.lock().expect("metrics registry");
        let prof_report = prof.is_enabled().then(|| prof.report());
        let text = render_openmetrics_with_prof(&guard, Some(&tree), prof_report.as_ref());
        drop(guard);
        match std::fs::write(path, text) {
            Ok(()) => println!("openmetrics written to {path}"),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if prof.is_enabled() {
        let report = prof.report();
        if let Some(path) = profile_path {
            match std::fs::write(path, prof_to_json(&report)) {
                Ok(()) => println!("profile written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        if let Some(path) = profile_collapsed_path {
            match std::fs::write(path, report.render_collapsed()) {
                Ok(()) => println!("collapsed stacks written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        eprint!("{}", report.render_table());
    }
    if let Some(state) = &timeline {
        let state = state.lock().expect("timeline state");
        if let Some(path) = timeline_path {
            match std::fs::write(path, state.timeline.to_json()) {
                Ok(()) => println!("timeline written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        if let Some(path) = timeline_csv_path {
            match std::fs::write(path, state.timeline.to_csv()) {
                Ok(()) => println!("timeline csv written to {path}"),
                Err(e) => return fail(format!("writing {path}: {e}")),
            }
        }
        println!();
        print!("{}", detect_bottlenecks(&state.stats).render());
    }
    if args.iter().any(|a| a == "--critical-path") {
        println!();
        print!("{}", render_critical_path(&critical_path(&result)));
    }
    if args.iter().any(|a| a == "--diagram") {
        let names: Vec<&str> = wf
            .processors
            .iter()
            .filter(|p| p.kind == moteur_repro::moteur::ProcessorKind::Service)
            .map(|p| p.name.as_str())
            .collect();
        println!();
        print!("{}", diagram::render(&result.invocations, &names));
    }
    // Round-trip sanity so `moteur run` doubles as a format checker.
    if write_workflow(&wf).is_err() {
        eprintln!("note: workflow contains bindings with no XML form");
    }
    let report = result.report();
    if !report.ok() {
        println!();
        print!("{}", report.render());
    }
    if let Some(path) = flag_value(args, "--workflow-report") {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("workflow report written to {path}"),
            Err(e) => return fail(format!("writing {path}: {e}")),
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        // Degraded run: results were delivered but items are missing.
        ExitCode::FAILURE
    }
}
