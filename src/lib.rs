//! Umbrella crate for the MOTEUR-RS reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use a single dependency. See `README.md` and `DESIGN.md` at the
//! repository root for the system overview.

pub use moteur;
pub use moteur_analysis as analysis;
pub use moteur_bench as bench;
pub use moteur_gridsim as gridsim;
pub use moteur_registration as registration;
pub use moteur_scufl as scufl;
pub use moteur_wrapper as wrapper;
pub use moteur_xml as xml;
